//! # mvstore — multi-version storage substrate
//!
//! The paper assumes "the maintenance of a multi-version database"
//! (Section 1.2.2) and, for intra-class synchronization, "the basic
//! timestamp ordering protocol \[Bernstein80\] or the multi-version
//! timestamp ordering protocol \[Reed78\]" (Protocol B). This crate is that
//! substrate, shared by the HDD scheduler and by every baseline:
//!
//! * [`chain::VersionChain`] — a granule's committed/pending versions
//!   ordered by write timestamp, with the MVTO read/write rules and the
//!   per-granule read-timestamp bookkeeping basic TSO needs;
//! * [`backend::StorageBackend`] — the pluggable storage tier every
//!   scheduler talks to (get / put-version / scan / truncate), with two
//!   implementations:
//!   [`store::MvStore`] — a sharded concurrent in-memory map of granules
//!   to chains, with seeding and time-wall-driven garbage collection —
//!   and [`filestore::FileBackend`] — a zero-dependency log-structured
//!   durable tier (append-only checksummed segment files over an
//!   in-memory index, with crash-safe rotation);
//! * [`recovery`] — redo-only replay of a (possibly torn) schedule log
//!   into any backend;
//! * [`locktable::LockTable`] — shared/exclusive locks with FIFO waiters,
//!   upgrades, and waits-for deadlock detection (substrate for the 2PL
//!   family of baselines).

#![warn(missing_docs)]

pub mod backend;
pub mod chain;
pub mod filestore;
pub mod locktable;
pub mod recovery;
pub mod store;

pub use backend::{StorageBackend, VersionRecord};
pub use chain::{MvtoReadResult, MvtoWriteResult, Version, VersionChain};
pub use filestore::{FileBackend, FileBackendConfig, OpenError};
pub use locktable::{LockMode, LockRequestResult, LockTable};
pub use recovery::{recover, RecoveryAnomalies, RecoveryReport, SkipKind, SkippedFrame};
pub use store::MvStore;
