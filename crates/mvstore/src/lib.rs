//! # mvstore — multi-version in-memory storage substrate
//!
//! The paper assumes "the maintenance of a multi-version database"
//! (Section 1.2.2) and, for intra-class synchronization, "the basic
//! timestamp ordering protocol \[Bernstein80\] or the multi-version
//! timestamp ordering protocol \[Reed78\]" (Protocol B). This crate is that
//! substrate, shared by the HDD scheduler and by every baseline:
//!
//! * [`chain::VersionChain`] — a granule's committed/pending versions
//!   ordered by write timestamp, with the MVTO read/write rules and the
//!   per-granule read-timestamp bookkeeping basic TSO needs;
//! * [`store::MvStore`] — a sharded concurrent map of granules to chains,
//!   with seeding and time-wall-driven garbage collection;
//! * [`locktable::LockTable`] — shared/exclusive locks with FIFO waiters,
//!   upgrades, and waits-for deadlock detection (substrate for the 2PL
//!   family of baselines).

#![warn(missing_docs)]

pub mod chain;
pub mod locktable;
pub mod recovery;
pub mod store;

pub use chain::{MvtoReadResult, MvtoWriteResult, Version, VersionChain};
pub use locktable::{LockMode, LockRequestResult, LockTable};
pub use recovery::{recover, RecoveryAnomalies, RecoveryReport};
pub use store::MvStore;
