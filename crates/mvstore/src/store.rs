//! The sharded multi-version store.
//!
//! [`MvStore`] maps [`GranuleId`]s to [`VersionChain`]s across a fixed
//! number of mutex-protected shards. All protocol logic lives in the
//! chains (and in the schedulers above); the store provides location,
//! seeding, per-granule critical sections, and sweep operations
//! (commit/abort cleanup across a write set, garbage collection).

use crate::chain::VersionChain;
use parking_lot::Mutex;
use std::collections::HashMap;
use txn_model::{GranuleId, Timestamp, TxnId, Value};

/// Power-of-two shard count, indexed by mask instead of `%`.
const SHARDS: usize = 64;

/// Fibonacci multiply-shift mixer over the granule's raw bits. A
/// `GranuleId` is `(segment, key)` with low entropy in both words;
/// multiplying by the 64-bit golden-ratio constant diffuses that into
/// the high bits, which the shift then selects. No hasher state is
/// constructed per access (the previous `DefaultHasher`-per-call did a
/// full SipHash setup and finalization on every chain touch).
#[inline]
fn shard_index(g: GranuleId) -> usize {
    let raw = (g.segment.0 as u64) << 48 ^ g.key;
    let mixed = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> (64 - SHARDS.trailing_zeros())) as usize & (SHARDS - 1)
}

/// A concurrent granule → version-chain map.
#[derive(Debug)]
pub struct MvStore {
    shards: Vec<Mutex<HashMap<GranuleId, VersionChain>>>,
}

impl MvStore {
    /// An empty store.
    pub fn new() -> Self {
        MvStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, g: GranuleId) -> &Mutex<HashMap<GranuleId, VersionChain>> {
        &self.shards[shard_index(g)]
    }

    /// Seed `g` with a committed initial version (write timestamp ZERO).
    /// Replaces any existing chain; intended for database population.
    pub fn seed(&self, g: GranuleId, value: Value) {
        self.shard(g).lock().insert(g, VersionChain::seeded(value));
    }

    /// Run `f` with exclusive access to `g`'s chain, creating a seeded
    /// (`Value::Absent`) chain on first touch.
    pub fn with_chain<R>(&self, g: GranuleId, f: impl FnOnce(&mut VersionChain) -> R) -> R {
        let mut shard = self.shard(g).lock();
        let chain = shard
            .entry(g)
            .or_insert_with(|| VersionChain::seeded(Value::Absent));
        f(chain)
    }

    /// Mark all of `writer`'s pending versions in `write_set` committed.
    pub fn commit_writes(&self, writer: TxnId, write_set: &[GranuleId]) {
        for &g in write_set {
            self.with_chain(g, |c| c.commit_writer(writer));
        }
    }

    /// Remove all of `writer`'s pending versions in `write_set`.
    pub fn abort_writes(&self, writer: TxnId, write_set: &[GranuleId]) {
        for &g in write_set {
            self.with_chain(g, |c| c.remove_writer_pending(writer));
        }
    }

    /// Garbage-collect every chain: drop committed versions older than the
    /// watermark except the latest one below it. Returns total reclaimed.
    pub fn prune_before(&self, wm: Timestamp) -> usize {
        let mut reclaimed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            for chain in shard.values_mut() {
                reclaimed += chain.prune_before(wm);
            }
        }
        reclaimed
    }

    /// Total number of versions held across all granules.
    pub fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .map(super::chain::VersionChain::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Number of granules with a chain.
    pub fn granule_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Length of the deepest version chain — the gauge-board signal for
    /// "GC is falling behind on some hot granule". O(granules); sample
    /// it from maintenance ticks, not hot paths.
    pub fn max_chain_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .map(super::chain::VersionChain::len)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Visit every chain with its granule id (the scan API of the
    /// storage trait). Holds one shard lock at a time; intended for
    /// quiescent moments (gauges refresh, checkpointing, tests).
    pub fn for_each_chain(&self, f: &mut dyn FnMut(GranuleId, &VersionChain)) {
        for shard in &self.shards {
            for (g, chain) in shard.lock().iter() {
                f(*g, chain);
            }
        }
    }

    /// The latest committed value of `g` (for result inspection in tests
    /// and examples), or `Value::Absent`.
    pub fn latest_value(&self, g: GranuleId) -> Value {
        self.with_chain(g, |c| {
            c.latest_committed()
                .map_or(Value::Absent, |v| (*v.value).clone())
        })
    }

    /// The committed value of `g` as of logical time `ts` (exclusive):
    /// the latest committed version with write timestamp `< ts`.
    ///
    /// This is Reed's "arbitrary time slice" retrieval (the paper cites
    /// it in Section 1.3); it is only meaningful for times at or above
    /// the garbage-collection watermark — older slices may have been
    /// pruned down to their newest surviving version.
    pub fn value_as_of(&self, g: GranuleId, ts: Timestamp) -> Value {
        self.with_chain(g, |c| {
            c.latest_committed_before(ts)
                .map_or(Value::Absent, |v| (*v.value).clone())
        })
    }
}

impl Default for MvStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use txn_model::SegmentId;

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    #[test]
    fn seed_and_read_back() {
        let s = MvStore::new();
        s.seed(g(0, 1), Value::Int(100));
        assert_eq!(s.latest_value(g(0, 1)), Value::Int(100));
        assert_eq!(s.latest_value(g(0, 2)), Value::Absent);
        assert_eq!(s.granule_count(), 2); // touch created the second chain
    }

    #[test]
    fn commit_and_abort_sweeps() {
        let s = MvStore::new();
        let gs = [g(0, 1), g(0, 2)];
        for &gr in &gs {
            s.with_chain(gr, |c| {
                c.mvto_write(Timestamp(5), Arc::new(Value::Int(5)), TxnId(7));
            });
        }
        s.commit_writes(TxnId(7), &gs);
        assert_eq!(s.latest_value(g(0, 1)), Value::Int(5));

        for &gr in &gs {
            s.with_chain(gr, |c| {
                c.mvto_write(Timestamp(8), Arc::new(Value::Int(8)), TxnId(9));
            });
        }
        s.abort_writes(TxnId(9), &gs);
        assert_eq!(s.latest_value(g(0, 1)), Value::Int(5));
    }

    #[test]
    fn gc_across_granules() {
        let s = MvStore::new();
        for key in 0..10 {
            s.seed(g(0, key), Value::Int(0));
            for ts in 1..5u64 {
                s.with_chain(g(0, key), |c| {
                    c.mvto_write(Timestamp(ts), Arc::new(Value::Int(ts as i64)), TxnId(ts));
                    c.commit_writer(TxnId(ts));
                });
            }
        }
        assert_eq!(s.version_count(), 50);
        assert_eq!(s.max_chain_len(), 5);
        let reclaimed = s.prune_before(Timestamp(4));
        // Per granule: versions {0,1,2,3,4}; keep ts=3 (latest <4) and 4.
        assert_eq!(reclaimed, 30);
        assert_eq!(s.version_count(), 20);
        assert_eq!(s.max_chain_len(), 2, "GC flattens the deepest chain");
        assert_eq!(MvStore::new().max_chain_len(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let s = Arc::new(MvStore::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for k in 0..100 {
                    s.with_chain(g(0, k % 10), |c| {
                        c.install(
                            Timestamp(t * 1000 + k + 1),
                            Arc::new(Value::Int(1)),
                            TxnId(t + 1),
                            true,
                        );
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.version_count(), 8 * 100 + 10); // + seeds
    }
}
