//! Shared/exclusive lock table with FIFO waiters, upgrades, and waits-for
//! deadlock detection.
//!
//! Substrate for the two-phase-locking family of baselines (2PL, MV2PL and
//! the deliberately broken "2PL without read locks" of Figure 3). The
//! acquisition model is *polling*: [`LockTable::try_acquire`] either
//! grants, enqueues the caller (returning [`LockRequestResult::Waiting`]),
//! or reports a deadlock in which the **caller** is chosen as victim; the
//! driver retries waiting operations, and retries promote queue heads.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use txn_model::{GranuleId, TxnId};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode {
    fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRequestResult {
    /// The lock is held by the caller on return.
    Granted,
    /// The caller is enqueued; retry later.
    Waiting,
    /// Granting would (transitively) create a waits-for cycle; the caller
    /// must abort and release everything it holds.
    Deadlock,
}

#[derive(Debug, Default)]
struct GranuleLock {
    /// Invariant: all-Shared, or exactly one Exclusive holder.
    holders: Vec<(TxnId, LockMode)>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl GranuleLock {
    fn holds(&self, t: TxnId) -> Option<LockMode> {
        self.holders.iter().find(|(h, _)| *h == t).map(|(_, m)| *m)
    }

    fn compatible_with_holders(&self, t: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(h, m)| *h == t || m.compatible(mode))
    }

    /// Grant queued waiters from the head while compatible.
    fn promote(&mut self) {
        while let Some(&(t, mode)) = self.waiters.front() {
            if self.compatible_with_holders(t, mode) {
                self.waiters.pop_front();
                // Upgrade: replace existing shared hold.
                self.holders.retain(|(h, _)| *h != t);
                self.holders.push((t, mode));
            } else {
                break;
            }
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    locks: HashMap<GranuleId, GranuleLock>,
    /// Granules each transaction holds or waits on (release index).
    touched: HashMap<TxnId, HashSet<GranuleId>>,
}

/// The lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    inner: Mutex<Inner>,
}

impl LockTable {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `mode` on `g` for `txn`. See module docs for semantics.
    pub fn try_acquire(&self, txn: TxnId, g: GranuleId, mode: LockMode) -> LockRequestResult {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let lock = inner.locks.entry(g).or_default();
        inner.touched.entry(txn).or_default().insert(g);

        // Promotion pass: a retry may find itself grantable now.
        lock.promote();

        if let Some(held) = lock.holds(txn) {
            if held == LockMode::Exclusive || mode == LockMode::Shared {
                // Already strong enough; drop any stale waiter entry.
                lock.waiters.retain(|(t, _)| *t != txn);
                return LockRequestResult::Granted;
            }
            // Upgrade S → X.
            if lock.holders.len() == 1 {
                lock.holders[0].1 = LockMode::Exclusive;
                lock.waiters.retain(|(t, _)| *t != txn);
                return LockRequestResult::Granted;
            }
            // Enqueue the upgrade at the front (standard upgrade priority).
            if !lock.waiters.iter().any(|(t, _)| *t == txn) {
                lock.waiters.push_front((txn, LockMode::Exclusive));
            }
        } else if lock.waiters.iter().any(|(t, _)| *t == txn) {
            // Already queued; promotion above didn't reach us.
        } else if lock.waiters.is_empty() && lock.compatible_with_holders(txn, mode) {
            lock.holders.push((txn, mode));
            return LockRequestResult::Granted;
        } else {
            lock.waiters.push_back((txn, mode));
        }

        // Waits-for cycle check with the caller as potential victim.
        if Self::in_cycle(inner, txn) {
            // Remove the caller's waiter entries; caller will abort.
            if let Some(l) = inner.locks.get_mut(&g) {
                l.waiters.retain(|(t, _)| *t != txn);
            }
            return LockRequestResult::Deadlock;
        }
        LockRequestResult::Waiting
    }

    /// True iff `start` can reach itself in the waits-for graph.
    ///
    /// A waiter waits on (a) every incompatible holder of the awaited
    /// granule and (b) every waiter **ahead of it** in the FIFO queue —
    /// grants only happen from the head, so an earlier waiter blocks a
    /// later one regardless of mode compatibility. Omitting (b) leaves
    /// queue-mediated deadlocks (e.g. an X waiter wedged between two
    /// S-holders that wait on each other through other granules)
    /// undetected forever.
    fn in_cycle(inner: &Inner, start: TxnId) -> bool {
        // Build edges lazily during DFS.
        let waits_for = |t: TxnId| -> Vec<TxnId> {
            let mut out = Vec::new();
            for lock in inner.locks.values() {
                if let Some(pos) = lock.waiters.iter().position(|(w, _)| *w == t) {
                    let mode = lock.waiters[pos].1;
                    for &(h, hm) in &lock.holders {
                        if h != t && !hm.compatible(mode) {
                            out.push(h);
                        }
                    }
                    for &(w, _) in lock.waiters.iter().take(pos) {
                        if w != t {
                            out.push(w);
                        }
                    }
                }
            }
            out
        };
        let mut visited = HashSet::new();
        let mut stack = waits_for(start);
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if visited.insert(t) {
                stack.extend(waits_for(t));
            }
        }
        false
    }

    /// Release every lock and waiter entry of `txn`, promoting waiters.
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        if let Some(gs) = inner.touched.remove(&txn) {
            for g in gs {
                if let Some(lock) = inner.locks.get_mut(&g) {
                    lock.holders.retain(|(h, _)| *h != txn);
                    lock.waiters.retain(|(w, _)| *w != txn);
                    lock.promote();
                    if lock.holders.is_empty() && lock.waiters.is_empty() {
                        inner.locks.remove(&g);
                    }
                }
            }
        }
    }

    /// Number of granules currently locked (tests/diagnostics).
    pub fn locked_granules(&self) -> usize {
        self.inner.lock().locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txn_model::SegmentId;
    use LockMode::*;
    use LockRequestResult::*;

    fn g(key: u64) -> GranuleId {
        GranuleId::new(SegmentId(0), key)
    }

    #[test]
    fn shared_locks_coexist() {
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Shared), Granted);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Shared), Granted);
    }

    #[test]
    fn exclusive_blocks_and_releases() {
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Exclusive), Granted);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Shared), Waiting);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Shared), Waiting);
        lt.release_all(TxnId(1));
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Shared), Granted);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Shared), Granted);
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Shared), Granted);
        // Sole holder upgrades in place.
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Exclusive), Granted);
        // X holder asking for S is a no-op grant.
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Shared), Granted);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Shared), Waiting);
    }

    #[test]
    fn fifo_fairness() {
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Exclusive), Granted);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Exclusive), Waiting);
        assert_eq!(lt.try_acquire(TxnId(3), g(0), Exclusive), Waiting);
        lt.release_all(TxnId(1));
        // t3 retries first but t2 is ahead in the queue.
        assert_eq!(lt.try_acquire(TxnId(3), g(0), Exclusive), Waiting);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Exclusive), Granted);
    }

    #[test]
    fn classic_two_txn_deadlock() {
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Exclusive), Granted);
        assert_eq!(lt.try_acquire(TxnId(2), g(1), Exclusive), Granted);
        assert_eq!(lt.try_acquire(TxnId(1), g(1), Exclusive), Waiting);
        // t2 closing the cycle is the victim.
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Exclusive), Deadlock);
        lt.release_all(TxnId(2));
        assert_eq!(lt.try_acquire(TxnId(1), g(1), Exclusive), Granted);
    }

    #[test]
    fn upgrade_deadlock_detected() {
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Shared), Granted);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Shared), Granted);
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Exclusive), Waiting);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Exclusive), Deadlock);
        lt.release_all(TxnId(2));
        assert_eq!(lt.try_acquire(TxnId(1), g(0), Exclusive), Granted);
    }

    #[test]
    fn queue_mediated_deadlock_detected() {
        // Regression for the E10 livelock: the cycle runs through a
        // FIFO-queue predecessor, not only through holders.
        //   g1: A holds S; B waits X (on A); C waits S (behind B).
        //   g2: C holds S; A requests X (waits on C).
        // Cycle: A →(holder) C →(queue-ahead) B →(holder) A.
        let lt = LockTable::new();
        let (a, b, c) = (TxnId(1), TxnId(2), TxnId(3));
        assert_eq!(lt.try_acquire(a, g(1), Shared), Granted);
        assert_eq!(lt.try_acquire(c, g(2), Shared), Granted);
        assert_eq!(lt.try_acquire(b, g(1), Exclusive), Waiting);
        assert_eq!(lt.try_acquire(c, g(1), Shared), Waiting); // queued behind B
                                                              // A closing the cycle must be told, not left waiting forever.
        assert_eq!(lt.try_acquire(a, g(2), Exclusive), Deadlock);
        lt.release_all(a);
        // The remaining waiters drain.
        assert_eq!(lt.try_acquire(b, g(1), Exclusive), Granted);
        lt.release_all(b);
        assert_eq!(lt.try_acquire(c, g(1), Shared), Granted);
    }

    #[test]
    fn release_cleans_table() {
        let lt = LockTable::new();
        lt.try_acquire(TxnId(1), g(0), Shared);
        lt.try_acquire(TxnId(1), g(1), Exclusive);
        assert_eq!(lt.locked_granules(), 2);
        lt.release_all(TxnId(1));
        assert_eq!(lt.locked_granules(), 0);
    }

    #[test]
    fn waiter_promoted_on_retry_after_release() {
        let lt = LockTable::new();
        lt.try_acquire(TxnId(1), g(0), Exclusive);
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Exclusive), Waiting);
        lt.release_all(TxnId(1));
        assert_eq!(lt.try_acquire(TxnId(2), g(0), Exclusive), Granted);
    }
}
