//! A zero-dependency log-structured durable backend.
//!
//! [`FileBackend`] keeps the authoritative committed state in append-only
//! *segment files* under a directory, with a full in-memory [`MvStore`]
//! as the index (every read is served from memory; the files exist so a
//! process crash loses nothing that was committed). The on-disk format
//! deliberately reuses the WAL's checksummed framing
//! (`txn_model::wal::{frame_into, raw_frame, encode_value,
//! decode_value}`) so both durable artifacts share one torn-tail story:
//!
//! ```text
//! seg-NNNNNN.log := "HDDSEG" [version u8] frame*
//! frame          := [u32 len LE] [u64 fnv LE] payload
//! payload        := REC_VERSION  seg u32, key u64, ts u64, writer u64, value
//!                 | REC_TRUNCATE wm u64
//! ```
//!
//! * `REC_VERSION` records one committed version (seeds are versions at
//!   `Timestamp::ZERO` by `TxnId(0)`); replay is idempotent — a later
//!   record at the same `(granule, ts)` replaces the earlier one, which
//!   is exactly what redo replay needs.
//! * `REC_TRUNCATE` journals a GC watermark so replay re-prunes instead
//!   of resurrecting reclaimed versions.
//!
//! # Crash safety
//!
//! [`FileBackend::open`] replays every segment in order. A torn frame at
//! the tail of the **last** segment is the expected crash artifact: it is
//! physically truncated (`set_len`) and appending resumes at the cut. A
//! torn frame in any *earlier* segment, or a file with the wrong magic or
//! version, is not a crash artifact — it is corruption or a foreign file,
//! and `open` refuses with a clear [`OpenError`] rather than silently
//! dropping data. Segment rotation writes and syncs the new header, then
//! fsyncs the directory, before any record lands in the new file.

use crate::backend::{StorageBackend, VersionRecord};
use crate::chain::VersionChain;
use crate::store::MvStore;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use txn_model::wal::{decode_value, encode_value, frame_into, raw_frame};
use txn_model::{GranuleId, SegmentId, Timestamp, TxnId, Value};

/// Magic bytes opening every segment file (followed by [`SEG_VERSION`]).
pub const SEG_MAGIC: [u8; 6] = *b"HDDSEG";

/// Current segment file-format version.
pub const SEG_VERSION: u8 = 1;

/// Length of the segment file header (magic + version byte).
pub const SEG_HEADER_LEN: usize = SEG_MAGIC.len() + 1;

/// Record tags (first payload byte).
const REC_VERSION: u8 = 1;
const REC_TRUNCATE: u8 = 2;

/// Knobs for the file backend.
#[derive(Debug, Clone)]
pub struct FileBackendConfig {
    /// Rotate to a new segment file once the current one reaches this
    /// many bytes (a single oversized append may still exceed it).
    pub segment_bytes: u64,
    /// `sync_data` after every commit's records reach the segment file.
    /// Disable when an external WAL (the group-commit pipeline) is the
    /// durability authority and segment writes may lag it.
    pub fsync_commits: bool,
    /// Journal committed versions to the segment files at commit time.
    /// Disable to run the backend as index-plus-checkpoint only, with
    /// the WAL carrying all redo state — the E19 soak configuration,
    /// which keeps segments from getting *ahead* of a torn WAL.
    pub log_commits: bool,
}

impl Default for FileBackendConfig {
    fn default() -> Self {
        FileBackendConfig {
            segment_bytes: 4 << 20,
            fsync_commits: true,
            log_commits: true,
        }
    }
}

/// Why [`FileBackend::open`] refused a directory.
#[derive(Debug)]
pub enum OpenError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment file is not ours: bad magic or unsupported version.
    /// Refusing beats silently truncating someone else's data to zero.
    Foreign {
        /// Offending file.
        file: PathBuf,
        /// What was wrong with its header.
        reason: String,
    },
    /// A torn frame in a *non-last* segment. Only the last segment can
    /// legitimately tear (the crash artifact); an interior tear means
    /// corruption that redo replay cannot safely skip over.
    TornInterior {
        /// Offending file.
        file: PathBuf,
        /// Absolute byte offset of the torn frame.
        offset: usize,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "file backend I/O error: {e}"),
            OpenError::Foreign { file, reason } => {
                write!(f, "{} is not an HDD segment file: {reason}", file.display())
            }
            OpenError::TornInterior { file, offset } => write!(
                f,
                "{} has a torn frame at byte {offset} but is not the last segment: \
                 refusing to replay past interior corruption",
                file.display()
            ),
        }
    }
}

impl std::error::Error for OpenError {}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

/// The append head (current segment file and its fill level).
#[derive(Debug)]
struct SegWriter {
    file: File,
    seg_no: u32,
    bytes: u64,
}

/// The log-structured durable backend (see module docs).
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    cfg: FileBackendConfig,
    index: MvStore,
    writer: Mutex<SegWriter>,
}

fn seg_path(dir: &Path, seg_no: u32) -> PathBuf {
    dir.join(format!("seg-{seg_no:06}.log"))
}

/// Create a segment file with its header written and synced, then fsync
/// the directory so the new name survives a crash.
fn create_segment(dir: &Path, seg_no: u32) -> std::io::Result<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(seg_path(dir, seg_no))?;
    file.write_all(&SEG_MAGIC)?;
    file.write_all(&[SEG_VERSION])?;
    file.sync_data()?;
    File::open(dir)?.sync_all()?;
    Ok(file)
}

fn encode_version_record(out: &mut Vec<u8>, r: &VersionRecord) {
    let mut payload = Vec::with_capacity(40);
    payload.push(REC_VERSION);
    payload.extend_from_slice(&r.granule.segment.0.to_le_bytes());
    payload.extend_from_slice(&r.granule.key.to_le_bytes());
    payload.extend_from_slice(&r.ts.0.to_le_bytes());
    payload.extend_from_slice(&r.writer.0.to_le_bytes());
    encode_value(&mut payload, &r.value);
    frame_into(out, &payload);
}

fn encode_truncate_record(out: &mut Vec<u8>, wm: Timestamp) {
    let mut payload = Vec::with_capacity(9);
    payload.push(REC_TRUNCATE);
    payload.extend_from_slice(&wm.0.to_le_bytes());
    frame_into(out, &payload);
}

fn rd_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(b.try_into().unwrap()))
}

fn rd_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(b.try_into().unwrap()))
}

/// One decoded segment record.
enum SegRecord {
    Version(VersionRecord),
    Truncate(Timestamp),
}

fn decode_record(payload: &[u8]) -> Option<SegRecord> {
    let tag = *payload.first()?;
    let mut pos = 1usize;
    match tag {
        REC_VERSION => {
            let seg = rd_u32(payload, &mut pos)?;
            let key = rd_u64(payload, &mut pos)?;
            let ts = rd_u64(payload, &mut pos)?;
            let writer = rd_u64(payload, &mut pos)?;
            let (value, used) = decode_value(&payload[pos..])?;
            pos += used;
            (pos == payload.len()).then_some(SegRecord::Version(VersionRecord {
                granule: GranuleId::new(SegmentId(seg), key),
                ts: Timestamp(ts),
                value: Arc::new(value),
                writer: TxnId(writer),
            }))
        }
        REC_TRUNCATE => {
            let wm = rd_u64(payload, &mut pos)?;
            (pos == payload.len()).then_some(SegRecord::Truncate(Timestamp(wm)))
        }
        _ => None,
    }
}

impl FileBackend {
    /// Open (creating if needed) the backend rooted at `dir`, replaying
    /// every segment file into the in-memory index. See the module docs
    /// for the torn-tail / foreign-file policy.
    pub fn open(dir: &Path, cfg: FileBackendConfig) -> Result<Self, OpenError> {
        std::fs::create_dir_all(dir)?;
        let mut seg_nos: Vec<u32> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".log"))
            {
                if let Ok(n) = num.parse::<u32>() {
                    seg_nos.push(n);
                }
            }
        }
        seg_nos.sort_unstable();

        let index = MvStore::new();
        let mut writer = None;
        for (i, &seg_no) in seg_nos.iter().enumerate() {
            let path = seg_path(dir, seg_no);
            let buf = std::fs::read(&path)?;
            if buf.len() < SEG_HEADER_LEN || buf[..SEG_MAGIC.len()] != SEG_MAGIC {
                return Err(OpenError::Foreign {
                    file: path,
                    reason: "magic bytes mismatch (expected \"HDDSEG\")".into(),
                });
            }
            if buf[SEG_MAGIC.len()] != SEG_VERSION {
                return Err(OpenError::Foreign {
                    file: path,
                    reason: format!(
                        "segment format version {} not supported (this build reads {SEG_VERSION})",
                        buf[SEG_MAGIC.len()]
                    ),
                });
            }
            let mut pos = SEG_HEADER_LEN;
            let mut torn_at = None;
            while pos < buf.len() {
                let Some((payload, next)) = raw_frame(&buf, pos) else {
                    torn_at = Some(pos);
                    break;
                };
                let Some(rec) = decode_record(payload) else {
                    torn_at = Some(pos);
                    break;
                };
                match rec {
                    SegRecord::Version(r) => index.put_versions(std::slice::from_ref(&r)),
                    SegRecord::Truncate(wm) => {
                        MvStore::prune_before(&index, wm);
                    }
                }
                pos = next;
            }
            let is_last = i == seg_nos.len() - 1;
            if let Some(off) = torn_at {
                if !is_last {
                    return Err(OpenError::TornInterior {
                        file: path,
                        offset: off,
                    });
                }
                // The crash artifact: physically truncate the torn tail
                // so appending resumes from a clean frame boundary.
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(off as u64)?;
                file.sync_data()?;
                pos = off;
            }
            if is_last {
                let mut file = OpenOptions::new().write(true).open(&path)?;
                // Append from the replayed (possibly truncated) end.
                file.seek(std::io::SeekFrom::End(0))?;
                writer = Some(SegWriter {
                    file,
                    seg_no,
                    bytes: pos as u64,
                });
            }
        }
        let writer = match writer {
            Some(w) => w,
            None => SegWriter {
                file: create_segment(dir, 0)?,
                seg_no: 0,
                bytes: SEG_HEADER_LEN as u64,
            },
        };
        Ok(FileBackend {
            dir: dir.to_path_buf(),
            cfg,
            index,
            writer: Mutex::new(writer),
        })
    }

    /// Directory the segment files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of the segment currently being appended to.
    pub fn current_segment(&self) -> u32 {
        self.writer.lock().seg_no
    }

    /// Append pre-encoded frames to the log, rotating first if the
    /// current segment is full, then optionally forcing them to disk.
    fn append(&self, frames: &[u8], sync: bool) -> std::io::Result<()> {
        let mut w = self.writer.lock();
        if w.bytes >= self.cfg.segment_bytes {
            // Crash-safe rotation: the old segment is synced shut, the
            // new header is durable (file + directory) before any record
            // lands in it.
            w.file.sync_data()?;
            let next = w.seg_no + 1;
            w.file = create_segment(&self.dir, next)?;
            w.seg_no = next;
            w.bytes = SEG_HEADER_LEN as u64;
        }
        w.file.write_all(frames)?;
        w.bytes += frames.len() as u64;
        if sync {
            w.file.sync_data()?;
        }
        Ok(())
    }

    fn append_version_records(&self, recs: &[VersionRecord], sync: bool) {
        let mut frames = Vec::with_capacity(recs.len() * 52);
        for r in recs {
            encode_version_record(&mut frames, r);
        }
        self.append(&frames, sync).expect("segment append failed");
    }
}

impl StorageBackend for FileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn persistent(&self) -> bool {
        true
    }

    fn seed(&self, g: GranuleId, value: Value) {
        // Seeds are journaled unconditionally (even with `log_commits`
        // off): the WAL never carries them, so a reopened backend must
        // restore the initial database itself. No per-seed fsync —
        // population syncs once via `sync()` or the first commit.
        let rec = VersionRecord {
            granule: g,
            ts: Timestamp::ZERO,
            value: Arc::new(value.clone()),
            writer: TxnId(0),
        };
        self.index.seed(g, value);
        self.append_version_records(std::slice::from_ref(&rec), false);
    }

    fn with_chain_dyn(&self, g: GranuleId, f: &mut dyn FnMut(&mut VersionChain)) {
        self.index.with_chain(g, |c| f(c));
    }

    fn commit_writes(&self, writer: TxnId, write_set: &[GranuleId]) {
        let mut recs = Vec::new();
        for &g in write_set {
            self.index.with_chain(g, |c| {
                c.commit_writer(writer);
                if self.cfg.log_commits {
                    if let Some(v) = c.version_by_writer(writer) {
                        if v.committed {
                            recs.push(VersionRecord {
                                granule: g,
                                ts: v.ts,
                                value: Arc::clone(&v.value),
                                writer,
                            });
                        }
                    }
                }
            });
        }
        if !recs.is_empty() {
            // The trait's durability point: records hit stable storage
            // before commit_writes returns (unless the WAL owns
            // durability and `fsync_commits` is off).
            self.append_version_records(&recs, self.cfg.fsync_commits);
        }
    }

    fn abort_writes(&self, writer: TxnId, write_set: &[GranuleId]) {
        // Redo discipline: pending versions were never journaled, so an
        // abort is memory-only.
        self.index.abort_writes(writer, write_set);
    }

    fn put_versions(&self, batch: &[VersionRecord]) {
        StorageBackend::put_versions(&self.index, batch);
        if !batch.is_empty() {
            // Recovery replay re-journals what it installs so the next
            // crash recovers from segments alone; synced because the
            // caller (recovery) has no later durability point.
            self.append_version_records(batch, true);
        }
    }

    fn scan_chains(&self, f: &mut dyn FnMut(GranuleId, &VersionChain)) {
        self.index.for_each_chain(f);
    }

    fn prune_before(&self, wm: Timestamp) -> usize {
        let reclaimed = self.index.prune_before(wm);
        // Journal the watermark so replay re-prunes; advisory, unsynced.
        let mut frames = Vec::with_capacity(32);
        encode_truncate_record(&mut frames, wm);
        self.append(&frames, false).expect("segment append failed");
        reclaimed
    }

    fn version_count(&self) -> usize {
        self.index.version_count()
    }

    fn granule_count(&self) -> usize {
        self.index.granule_count()
    }

    fn max_chain_len(&self) -> usize {
        self.index.max_chain_len()
    }

    fn sync(&self) -> std::io::Result<()> {
        self.writer.lock().file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        // ordering: Relaxed — test-dir name uniqueness only needs RMW
        // atomicity of the counter, no cross-thread publication.
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("hdd-filestore-{}-{tag}-{n}", std::process::id()))
    }

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(SegmentId(seg), key)
    }

    fn commit_one(store: &FileBackend, key: u64, ts: u64, val: i64, txn: u64) {
        store.index.with_chain(g(0, key), |c| {
            c.mvto_write(Timestamp(ts), Arc::new(Value::Int(val)), TxnId(txn));
        });
        StorageBackend::commit_writes(store, TxnId(txn), &[g(0, key)]);
    }

    #[test]
    fn seeds_and_commits_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
            assert_eq!(store.name(), "file");
            assert!(store.persistent());
            StorageBackend::seed(&store, g(0, 1), Value::Int(10));
            StorageBackend::seed(&store, g(0, 2), Value::Int(20));
            commit_one(&store, 1, 5, 50, 7);
            store.sync().unwrap();
        }
        let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
        let dynstore: &dyn StorageBackend = &store;
        assert_eq!(dynstore.latest_value(g(0, 1)), Value::Int(50));
        assert_eq!(dynstore.latest_value(g(0, 2)), Value::Int(20));
        assert_eq!(dynstore.value_as_of(g(0, 1), Timestamp(5)), Value::Int(10));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_the_log_and_replay_stitches_it() {
        let dir = temp_dir("rotate");
        let cfg = FileBackendConfig {
            segment_bytes: 256,
            ..FileBackendConfig::default()
        };
        {
            let store = FileBackend::open(&dir, cfg.clone()).unwrap();
            StorageBackend::seed(&store, g(0, 1), Value::Int(0));
            for ts in 1..=40u64 {
                commit_one(&store, 1, ts, ts as i64, ts);
            }
            assert!(store.current_segment() >= 2, "tiny segments must rotate");
        }
        let store = FileBackend::open(&dir, cfg).unwrap();
        let dynstore: &dyn StorageBackend = &store;
        assert_eq!(dynstore.latest_value(g(0, 1)), Value::Int(40));
        assert_eq!(store.version_count(), 41);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_segment_file_is_rejected_with_a_clear_error() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(seg_path(&dir, 0), b"NOT A SEGMENT FILE AT ALL").unwrap();
        match FileBackend::open(&dir, FileBackendConfig::default()) {
            Err(OpenError::Foreign { file, reason }) => {
                assert_eq!(file, seg_path(&dir, 0));
                assert!(reason.contains("magic"), "got: {reason}");
            }
            other => panic!("expected Foreign, got {other:?}"),
        }
        // Future format version: also refused, naming the version.
        std::fs::write(seg_path(&dir, 0), [b'H', b'D', b'D', b'S', b'E', b'G', 9]).unwrap();
        match FileBackend::open(&dir, FileBackendConfig::default()) {
            Err(OpenError::Foreign { reason, .. }) => assert!(reason.contains('9')),
            other => panic!("expected Foreign, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_last_segment_truncates_and_appends_resume() {
        let dir = temp_dir("torn");
        {
            let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
            StorageBackend::seed(&store, g(0, 1), Value::Int(1));
            commit_one(&store, 1, 3, 33, 2);
            store.sync().unwrap();
        }
        // Tear the tail: chop 5 bytes off the last (only) segment.
        let path = seg_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        {
            let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
            let dynstore: &dyn StorageBackend = &store;
            // The torn commit record did not replay; the seed did.
            assert_eq!(dynstore.latest_value(g(0, 1)), Value::Int(1));
            // The file was physically truncated back to a frame boundary
            // (strictly shorter than the torn image, but past the header).
            let new_len = std::fs::metadata(&path).unwrap().len();
            assert!(new_len < len - 5, "tear cut back to frame start");
            assert!(new_len > SEG_HEADER_LEN as u64);
            // And appending resumes cleanly after the cut.
            commit_one(&store, 1, 7, 77, 3);
        }
        let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
        let dynstore: &dyn StorageBackend = &store;
        assert_eq!(dynstore.latest_value(g(0, 1)), Value::Int(77));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_frame_in_interior_segment_is_refused() {
        let dir = temp_dir("interior");
        let cfg = FileBackendConfig {
            segment_bytes: 128,
            ..FileBackendConfig::default()
        };
        {
            let store = FileBackend::open(&dir, cfg.clone()).unwrap();
            StorageBackend::seed(&store, g(0, 1), Value::Int(0));
            for ts in 1..=20u64 {
                commit_one(&store, 1, ts, ts as i64, ts);
            }
            assert!(store.current_segment() >= 1);
        }
        // Corrupt the FIRST segment's tail — not a legal crash artifact.
        let path = seg_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        match FileBackend::open(&dir, cfg) {
            Err(OpenError::TornInterior { file, .. }) => assert_eq!(file, path),
            other => panic!("expected TornInterior, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_records_replay_the_gc_watermark() {
        let dir = temp_dir("gc");
        {
            let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
            StorageBackend::seed(&store, g(0, 1), Value::Int(0));
            for ts in 1..=5u64 {
                commit_one(&store, 1, ts, ts as i64, ts);
            }
            assert_eq!(store.version_count(), 6);
            let reclaimed = StorageBackend::prune_before(&store, Timestamp(5));
            assert_eq!(reclaimed, 4); // keep ts=4 (snapshot below wm) and 5
            store.sync().unwrap();
        }
        let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
        assert_eq!(store.version_count(), 2, "replay must re-prune");
        let dynstore: &dyn StorageBackend = &store;
        assert_eq!(dynstore.latest_value(g(0, 1)), Value::Int(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_versions_is_durable_without_explicit_sync() {
        let dir = temp_dir("putv");
        {
            let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
            StorageBackend::put_versions(
                &store,
                &[VersionRecord {
                    granule: g(0, 9),
                    ts: Timestamp(4),
                    value: Arc::new(Value::Int(44)),
                    writer: TxnId(3),
                }],
            );
        }
        let store = FileBackend::open(&dir, FileBackendConfig::default()).unwrap();
        let dynstore: &dyn StorageBackend = &store;
        assert_eq!(dynstore.latest_value(g(0, 9)), Value::Int(44));
        std::fs::remove_dir_all(&dir).ok();
    }
}
