//! Shared helpers for the per-figure Criterion benches.
//!
//! Benches disable schedule logging and post-hoc verification (both are
//! correctness tooling, not part of the protocols' cost) so the numbers
//! reflect what the paper argues about: registrations, waits,
//! rejections, and scheduler work.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::driver::{run_interleaved, DriverConfig, RunStats};
use sim::factory::{build_scheduler, SchedulerKind};
use txn_model::TxnProgram;
use workloads::Workload;

/// Driver config for benches: no verification, no logging growth.
pub fn bench_driver_config() -> DriverConfig {
    DriverConfig {
        verify: false,
        ..DriverConfig::default()
    }
}

/// Generate `n` programs from a fresh workload instance.
pub fn programs<W: Workload>(w: &mut W, n: usize, seed: u64) -> Vec<TxnProgram> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| w.generate(&mut rng)).collect()
}

/// One measured run: build the scheduler over a fresh store, disable
/// logging, execute the batch.
pub fn run_batch<W: Workload>(kind: SchedulerKind, w: &W, batch: Vec<TxnProgram>) -> RunStats {
    let (sched, _store) = build_scheduler(kind, w);
    sched.log().set_enabled(false);
    run_interleaved(sched.as_ref(), batch, &bench_driver_config())
}
