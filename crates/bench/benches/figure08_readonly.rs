//! **Figure 8 bench** — read-only transactions on one critical path:
//! batch cost under HDD (Protocol A, free), MV2PL (snapshot read-only but
//! locked updates) and 2PL (everything locked).

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::driver::run_interleaved;
use sim::factory::{build_scheduler, SchedulerKind};
use workloads::inventory::{Inventory, InventoryConfig};

fn report_heavy() -> Inventory {
    Inventory::new(InventoryConfig {
        items: 32,
        w_type1: 30,
        w_type2: 10,
        w_type3: 5,
        w_type4: 3,
        w_type5: 3,
        w_report: 50,
        w_audit: 0,
        ..InventoryConfig::default()
    })
}

fn figure08(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure08_readonly_on_chain");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Hdd,
        SchedulerKind::Mv2pl,
        SchedulerKind::TwoPl,
        SchedulerKind::Mvto,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let mut w = report_heavy();
                    let batch = programs(&mut w, 300, 0x00B1_6008);
                    let (sched, _store) = build_scheduler(kind, &w);
                    sched.log().set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    run_interleaved(sched.as_ref(), batch, &bench_driver_config()).committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure08
}
criterion_main!(benches);
