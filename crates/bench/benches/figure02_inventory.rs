//! **Figure 2 bench** — the inventory application under each scheduler:
//! wall time of a 300-transaction mixed batch (events, postings,
//! reorders, profiles, accounting, reports, audits).

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::driver::run_interleaved;
use sim::factory::{build_scheduler, ALL_KINDS};
use workloads::inventory::{Inventory, InventoryConfig};

fn figure02(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure02_inventory");
    group.sample_size(10);
    for &kind in ALL_KINDS {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let mut w = Inventory::new(InventoryConfig {
                        items: 32,
                        ..InventoryConfig::default()
                    });
                    let batch = programs(&mut w, 300, 0x00B1_6002);
                    let (sched, _store) = build_scheduler(kind, &w);
                    sched.log().set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    let stats = run_interleaved(sched.as_ref(), batch, &bench_driver_config());
                    assert_eq!(stats.stalled, 0);
                    stats.committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure02
}
criterion_main!(benches);
