//! **Ablation: garbage collection interval** — GC trades sweep work for
//! bounded version chains (shorter scans on every read). This bench runs
//! a long update-heavy batch with GC off, lazy and aggressive.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdd::protocol::HddConfig;
use sim::driver::run_interleaved;
use sim::factory::build_hdd_with_config;
use workloads::banking::Banking;

fn ablation_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gc_interval");
    group.sample_size(10);
    for gc_interval in [0u64, 64, 8] {
        let label = if gc_interval == 0 {
            "off".to_string()
        } else {
            format!("every{gc_interval}")
        };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter_batched(
                || {
                    // Few accounts → long version chains without GC.
                    let mut w = Banking::new(4);
                    let batch = programs(&mut w, 400, 0x00B1_6102);
                    let (sched, _store, _h) = build_hdd_with_config(
                        &w,
                        HddConfig {
                            gc_interval,
                            ..HddConfig::default()
                        },
                    );
                    sched.core().log.set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    let stats = run_interleaved(sched.as_ref(), batch, &bench_driver_config());
                    (stats.committed, sched.store().version_count())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = ablation_gc
}
criterion_main!(benches);
