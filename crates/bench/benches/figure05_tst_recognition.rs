//! **Figure 5 bench** — transitive-semi-tree recognition cost as the
//! segment count grows: the one-time analysis a DBA pays to validate a
//! decomposition.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdd::graph::is_transitive_semi_tree;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::experiments::e05_tst_recognition::{random_dag, random_tst};

fn figure05(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure05_tst_recognition");
    for n in [8usize, 16, 32, 64, 128] {
        let mut rng = StdRng::seed_from_u64(0x00B1_6005);
        let tst = random_tst(n, &mut rng);
        let dag = random_dag(n, 0.3, &mut rng);
        group.bench_function(BenchmarkId::new("tst", n), |b| {
            b.iter(|| is_transitive_semi_tree(std::hint::black_box(&tst)));
        });
        group.bench_function(BenchmarkId::new("dense_dag", n), |b| {
            b.iter(|| is_transitive_semi_tree(std::hint::black_box(&dag)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure05
}
criterion_main!(benches);
