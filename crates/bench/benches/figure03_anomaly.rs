//! **Figure 3 bench** — replay cost of the scripted 2PL anomaly timing
//! (including dependency-graph cycle detection, which is what a
//! verification-enabled deployment would pay).

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::factory::{build_scheduler, SchedulerKind};
use sim::scripts::run_script;
use workloads::anomalies::{figure3_script, AnomalyWorkload};

fn figure03(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure03_anomaly");
    for kind in [
        SchedulerKind::TwoPlNoCrossReadLocks,
        SchedulerKind::TwoPl,
        SchedulerKind::Hdd,
    ] {
        let script = figure3_script();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let w = AnomalyWorkload;
                    let (sched, _store) = build_scheduler(kind, &w);
                    sched
                },
                |sched| run_script(sched.as_ref(), &script).serializable,
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure03
}
criterion_main!(benches);
