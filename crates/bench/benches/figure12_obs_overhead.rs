//! **Figure 12 (extension): observability overhead** — the cost of the
//! `obs` sidecar on the hot path, measured both ways:
//!
//! * `disabled/*` — obs compiled in but switched off (the default).
//!   This is the configuration every other bench and the recorded
//!   `BENCH_hotpath.json` trajectory run in; its budget is **< 5%**
//!   versus the pre-obs hot path (each instrumentation site costs one
//!   branch on a flag captured at run start, and the driver skips all
//!   clock reads).
//! * `enabled/*` — full recording: commit-latency / op-service /
//!   block-wait / backoff histograms, registry scan lengths and the
//!   protocol trace ring. This is the price `experiments -- e14` pays.
//!
//! The hdd 8-worker `disabled` point is the one the `obs-smoke` CI gate
//! (scripts/ci.sh) checks against the recorded baseline.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::programs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use std::time::Duration;
use workloads::inventory::{Inventory, InventoryConfig};

fn figure12_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure12_obs_overhead");
    group.sample_size(10);
    for (mode, obs) in [("disabled", false), ("enabled", true)] {
        for kind in [SchedulerKind::Hdd, SchedulerKind::Mvto] {
            for workers in [1usize, 8] {
                group.bench_function(
                    BenchmarkId::new(
                        format!("{mode}/{}", kind.name()),
                        format!("workers{workers}"),
                    ),
                    |b| {
                        b.iter_batched(
                            || {
                                let mut w = Inventory::new(InventoryConfig {
                                    items: 64,
                                    ..InventoryConfig::default()
                                });
                                let batch = programs(&mut w, 400, 0x0F16_0012);
                                let (sched, _store) = build_scheduler(kind, &w);
                                (sched, batch)
                            },
                            |(sched, batch)| {
                                let cfg = ConcurrentConfig {
                                    workers,
                                    obs,
                                    verify: false,
                                    capture_log: false,
                                    maintenance_interval: Duration::from_micros(50),
                                    ..ConcurrentConfig::default()
                                };
                                run_concurrent(sched.as_ref(), batch, &cfg).stats.committed
                            },
                            criterion::BatchSize::LargeInput,
                        );
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(2000))
        .sample_size(10);
    targets = figure12_obs_overhead
}
criterion_main!(benches);
