//! **Figure 7 bench** — evaluation cost of the `⇒` relation across its
//! three cases (same class, t1 higher, t2 higher).

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdd::activity::{topologically_follows, ActivityFuncs, ActivityRegistry, TxnCoord};
use sim::experiments::e06_activity_link::chain_hierarchy;
use txn_model::{ClassId, Timestamp};

fn figure07(c: &mut Criterion) {
    let h = chain_hierarchy(3);
    let registry = ActivityRegistry::new(3);
    registry.begin(ClassId(0), Timestamp(3));
    registry.begin(ClassId(1), Timestamp(5));
    registry.commit(ClassId(1), Timestamp(5), Timestamp(40));
    registry.begin(ClassId(2), Timestamp(7));

    let mut group = c.benchmark_group("figure07_follows");
    let cases = [
        (
            "same-class",
            TxnCoord::new(ClassId(1), Timestamp(50)),
            TxnCoord::new(ClassId(1), Timestamp(20)),
        ),
        (
            "t1-higher",
            TxnCoord::new(ClassId(0), Timestamp(50)),
            TxnCoord::new(ClassId(2), Timestamp(20)),
        ),
        (
            "t2-higher",
            TxnCoord::new(ClassId(2), Timestamp(50)),
            TxnCoord::new(ClassId(0), Timestamp(20)),
        ),
    ];
    for (name, t1, t2) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let funcs = ActivityFuncs::new(&h, &registry);
            b.iter(|| {
                topologically_follows(&funcs, std::hint::black_box(t1), std::hint::black_box(t2))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure07
}
criterion_main!(benches);
