//! **Figure 11 (extension): hot-path throughput** — multi-threaded
//! closed-loop runs over the inventory workload, sweeping worker count
//! for HDD against the strongest baselines. This is the wall-clock
//! companion to `figure10_comparison` (which counts protocol work under
//! the deterministic driver): it exercises the concurrent driver's
//! atomic work-claiming cursor, the striped schedule log (disabled
//! here, as in every bench), the sharded transaction table and the
//! registry's settled-cursor fast path under real thread interleaving.
//!
//! The companion experiment (`cargo run --release -p sim --bin
//! experiments -- hotpath`) reports absolute committed-txns/sec for the
//! same sweep; this bench exists for regression tracking via criterion.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::programs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use std::time::Duration;
use workloads::inventory::{Inventory, InventoryConfig};

fn figure11_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure11_hotpath");
    group.sample_size(10);
    for kind in [
        SchedulerKind::Hdd,
        SchedulerKind::Mvto,
        SchedulerKind::TwoPl,
    ] {
        for workers in [1usize, 2, 4, 8, 16, 32] {
            group.bench_function(
                BenchmarkId::new(kind.name(), format!("workers{workers}")),
                |b| {
                    b.iter_batched(
                        || {
                            let mut w = Inventory::new(InventoryConfig {
                                items: 64,
                                ..InventoryConfig::default()
                            });
                            let batch = programs(&mut w, 400, 0x0F16_0011);
                            let (sched, _store) = build_scheduler(kind, &w);
                            (sched, batch)
                        },
                        |(sched, batch)| {
                            let cfg = ConcurrentConfig {
                                workers,
                                verify: false,
                                capture_log: false,
                                maintenance_interval: Duration::from_micros(50),
                                ..ConcurrentConfig::default()
                            };
                            run_concurrent(sched.as_ref(), batch, &cfg).stats.committed
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(2000))
        .sample_size(10);
    targets = figure11_hotpath
}
criterion_main!(benches);
