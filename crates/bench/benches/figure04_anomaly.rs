//! **Figure 4 bench** — replay cost of the scripted TSO anomaly timing.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::factory::{build_scheduler, SchedulerKind};
use sim::scripts::run_script;
use workloads::anomalies::{figure4_script, AnomalyWorkload};

fn figure04(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure04_anomaly");
    for kind in [
        SchedulerKind::TsoNoCrossReadTs,
        SchedulerKind::Tso,
        SchedulerKind::Hdd,
    ] {
        let script = figure4_script();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let w = AnomalyWorkload;
                    let (sched, _store) = build_scheduler(kind, &w);
                    sched
                },
                |sched| run_script(sched.as_ref(), &script).serializable,
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure04
}
criterion_main!(benches);
