//! **Figure 9 bench** — time walls: (a) the cost of computing/releasing
//! a wall as the hierarchy grows; (b) batch cost of an audit-heavy
//! workload as the wall-release interval varies.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdd::protocol::HddConfig;
use sim::driver::run_interleaved;
use sim::factory::build_hdd_with_config;
use workloads::inventory::{Inventory, InventoryConfig};
use workloads::synthetic::{Synthetic, SyntheticConfig};

fn wall_release_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure09_wall_release");
    for depth in [2usize, 3, 4] {
        let w = Synthetic::new(SyntheticConfig {
            depth,
            fanout: 2,
            granules_per_segment: 4,
            ..SyntheticConfig::default()
        });
        let (sched, _store, _h) = build_hdd_with_config(&w, HddConfig::default());
        group.bench_function(
            BenchmarkId::new("idle_release", format!("depth{depth}")),
            |b| b.iter(|| sched.try_release_wall()),
        );
    }
    group.finish();
}

fn audit_batch_by_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure09_audit_batch");
    group.sample_size(10);
    for interval in [2u64, 16, 64] {
        group.bench_function(BenchmarkId::new("wall_interval", interval), |b| {
            b.iter_batched(
                || {
                    let mut w = Inventory::new(InventoryConfig {
                        items: 32,
                        w_report: 0,
                        w_audit: 30,
                        ..InventoryConfig::default()
                    });
                    let batch = programs(&mut w, 200, 0x00B1_6009);
                    let (sched, _store, _h) = build_hdd_with_config(
                        &w,
                        HddConfig {
                            wall_interval: interval,
                            ..HddConfig::default()
                        },
                    );
                    sched.core().log.set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    run_interleaved(sched.as_ref(), batch, &bench_driver_config()).committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = wall_release_cost, audit_batch_by_interval
}
criterion_main!(benches);
