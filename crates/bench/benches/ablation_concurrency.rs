//! **Ablation: multiprogramming level** — the driver's admission window
//! controls how many transactions are open at once. Wider windows raise
//! conflict rates (and, for HDD, hold `I_old` lower, aging Protocol A
//! bounds); this bench sweeps the window for HDD and 2PL.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::programs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::driver::{run_interleaved, DriverConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use workloads::inventory::{Inventory, InventoryConfig};

fn ablation_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_concurrency");
    group.sample_size(10);
    for kind in [SchedulerKind::Hdd, SchedulerKind::TwoPl] {
        for window in [4usize, 16, 64] {
            group.bench_function(
                BenchmarkId::new(kind.name(), format!("window{window}")),
                |b| {
                    b.iter_batched(
                        || {
                            let mut w = Inventory::new(InventoryConfig {
                                items: 16,
                                ..InventoryConfig::default()
                            });
                            let batch = programs(&mut w, 300, 0x00B1_6103);
                            let (sched, _store) = build_scheduler(kind, &w);
                            sched.log().set_enabled(false);
                            (sched, batch)
                        },
                        |(sched, batch)| {
                            let cfg = DriverConfig {
                                verify: false,
                                concurrency: window,
                                ..DriverConfig::default()
                            };
                            run_interleaved(sched.as_ref(), batch, &cfg).committed
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = ablation_concurrency
}
criterion_main!(benches);
