//! **Figure 1 bench** — the banking workload of the lost-update example:
//! cost of executing 200 read-modify-write transactions over 8 accounts
//! under each scheduler (no-control is the paper's broken strawman; the
//! others pay their respective synchronization costs to avoid it).

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::driver::run_interleaved;
use sim::factory::{build_scheduler, SchedulerKind};
use workloads::banking::Banking;

fn figure01(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure01_lost_update");
    group.sample_size(10);
    for kind in [
        SchedulerKind::NoControl,
        SchedulerKind::TwoPl,
        SchedulerKind::Tso,
        SchedulerKind::Mvto,
        SchedulerKind::Mv2pl,
        SchedulerKind::Hdd,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let mut w = Banking::new(8);
                    let batch = programs(&mut w, 200, 0x00B1_6001);
                    let (sched, _store) = build_scheduler(kind, &w);
                    sched.log().set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    let stats = run_interleaved(sched.as_ref(), batch, &bench_driver_config());
                    assert_eq!(stats.stalled, 0);
                    stats.committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure01
}
criterion_main!(benches);
