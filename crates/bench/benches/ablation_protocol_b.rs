//! **Ablation: Protocol B flavor** — the paper allows either "the basic
//! timestamp ordering protocol [Bernstein80] or the multi-version
//! timestamp ordering protocol [Reed78]" inside the root segment. MVTO
//! serves old readers their version where basic TO rejects them, trading
//! version storage for fewer restarts; this bench measures the batch
//! cost of each flavor on the inventory workload.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdd::protocol::{HddConfig, ProtocolBMode};
use sim::driver::run_interleaved;
use sim::factory::build_hdd_with_config;
use workloads::inventory::{Inventory, InventoryConfig};

fn ablation_protocol_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_protocol_b");
    group.sample_size(10);
    for (name, mode) in [
        ("mvto", ProtocolBMode::Mvto),
        ("basic_to", ProtocolBMode::BasicTo),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut w = Inventory::new(InventoryConfig {
                        items: 16, // hot root segments → real intra-class conflicts
                        ..InventoryConfig::default()
                    });
                    let batch = programs(&mut w, 300, 0x00B1_6101);
                    let (sched, _store, _h) = build_hdd_with_config(
                        &w,
                        HddConfig {
                            protocol_b: mode,
                            ..HddConfig::default()
                        },
                    );
                    sched.core().log.set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    let stats = run_interleaved(sched.as_ref(), batch, &bench_driver_config());
                    assert_eq!(stats.stalled, 0);
                    stats.committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = ablation_protocol_b
}
criterion_main!(benches);
