//! **Figure 10 bench** — the headline comparison: batch execution cost
//! of the synthetic deep-hierarchy workload (where cross-class reads
//! dominate) for every sound scheduler, plus a multi-threaded HDD run.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::{bench_driver_config, programs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::driver::run_interleaved;
use sim::factory::{build_scheduler, SchedulerKind, ALL_KINDS};
use workloads::synthetic::{Synthetic, SyntheticConfig};

fn synthetic() -> Synthetic {
    Synthetic::new(SyntheticConfig {
        depth: 4,
        fanout: 2,
        granules_per_segment: 64,
        reads_per_ancestor: 3,
        ..SyntheticConfig::default()
    })
}

fn comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10_comparison");
    group.sample_size(10);
    for &kind in ALL_KINDS {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let mut w = synthetic();
                    let batch = programs(&mut w, 250, 0x00B1_6010);
                    let (sched, _store) = build_scheduler(kind, &w);
                    sched.log().set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    run_interleaved(sched.as_ref(), batch, &bench_driver_config()).committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn concurrent_hdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10_concurrent");
    group.sample_size(10);
    for workers in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("hdd_workers", workers), |b| {
            b.iter_batched(
                || {
                    let mut w = synthetic();
                    let batch = programs(&mut w, 250, 0x00B1_6010);
                    let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
                    sched.log().set_enabled(false);
                    (sched, batch)
                },
                |(sched, batch)| {
                    run_concurrent(
                        sched.as_ref(),
                        batch,
                        &ConcurrentConfig {
                            workers,
                            verify: false,
                            ..ConcurrentConfig::default()
                        },
                    )
                    .stats
                    .committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = comparison, concurrent_hdd
}
criterion_main!(benches);
