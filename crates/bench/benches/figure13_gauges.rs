//! **Figure 13 (extension): gauge-board overhead** — the cost of the
//! hierarchy observatory on the HDD hot path, measured both ways:
//!
//! * `disabled/*` — gauge board allocated (the scheduler dimensions it
//!   at construction) but the obs flag off: every hot-path gauge site
//!   is behind the same single-branch flag as the rest of the sidecar,
//!   so this must track the plain figure12 `disabled` numbers. The
//!   `bench-gate` CI stage enforces the same point against the recorded
//!   `BENCH_hotpath.json` baseline.
//! * `enabled/*` — full recording plus live gauges: per-read staleness
//!   histogram records (O(1) relaxed) and the throttled maintenance
//!   refresh (walls/registry every 4th tick, store scan every 16th).
//!   `bench-gate` holds this within 50% of `BENCH_obs.json`.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use bench::programs;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::concurrent::{run_concurrent, ConcurrentConfig};
use sim::factory::{build_scheduler, SchedulerKind};
use std::time::Duration;
use workloads::inventory::{Inventory, InventoryConfig};

fn figure13_gauges(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure13_gauges");
    group.sample_size(10);
    for (mode, obs) in [("disabled", false), ("enabled", true)] {
        for workers in [1usize, 8] {
            group.bench_function(
                BenchmarkId::new(format!("{mode}/hdd"), format!("workers{workers}")),
                |b| {
                    b.iter_batched(
                        || {
                            let mut w = Inventory::new(InventoryConfig {
                                items: 64,
                                ..InventoryConfig::default()
                            });
                            let batch = programs(&mut w, 400, 0x0F16_0013);
                            let (sched, _store) = build_scheduler(SchedulerKind::Hdd, &w);
                            (sched, batch)
                        },
                        |(sched, batch)| {
                            let cfg = ConcurrentConfig {
                                workers,
                                obs,
                                verify: false,
                                capture_log: false,
                                maintenance_interval: Duration::from_micros(50),
                                ..ConcurrentConfig::default()
                            };
                            run_concurrent(sched.as_ref(), batch, &cfg).stats.committed
                        },
                        criterion::BatchSize::LargeInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(2000))
        .sample_size(10);
    targets = figure13_gauges
}
criterion_main!(benches);
