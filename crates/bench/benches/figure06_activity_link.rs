//! **Figure 6 bench** — the activity link function `A_i^j`: evaluation
//! cost per cross-class read as hierarchy depth and per-class activity
//! grow. This is the bookkeeping HDD pays instead of writing a read
//! timestamp.

// Bench targets: the criterion_group! macro generates undocumented
// items, and bench bodies are not a public API.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdd::activity::{ActivityFuncs, ActivityRegistry};
use sim::experiments::e06_activity_link::{chain_hierarchy, populate};
use txn_model::{ClassId, Timestamp};

fn figure06(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure06_activity_link");
    for depth in [2usize, 4, 8, 16] {
        for active in [1usize, 16, 128] {
            let h = chain_hierarchy(depth);
            let registry = ActivityRegistry::new(depth);
            populate(&registry, depth, active);
            let leaf = ClassId((depth - 1) as u32);
            let top = ClassId(0);
            group.bench_function(
                BenchmarkId::new(format!("depth{depth}"), format!("active{active}")),
                |b| {
                    let funcs = ActivityFuncs::new(&h, &registry);
                    b.iter(|| funcs.a_fn(leaf, top, std::hint::black_box(Timestamp(1_000_000))));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = figure06
}
criterion_main!(benches);
