//! The fault-injecting concurrent driver.
//!
//! Mirrors the sim crate's concurrent driver — workers claim programs
//! off a shared cursor and drive them to commit with bounded backoff
//! and retry budgets — but consults a [`FaultPlan`] before each
//! operation and injects the planned fault. After the last worker
//! exits, the harness keeps ticking scheduler maintenance for a *drain*
//! period so the straggler watchdog can reap any corpse a crash left in
//! the activity registry; a monitor thread samples the
//! `timewalls_released` counter the whole time and reports the longest
//! wall-release gap it observed.

use crate::plan::{FaultKind, FaultPlan};
use obs::{FaultCode, SpanEvent, Terminal, TraceEvent, NO_CLASS};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use txn_model::program::ReadCtx;
use txn_model::{
    CommitOutcome, GroupCommitWal, ReadOutcome, ScheduleEvent, Scheduler, Step, TxnProgram,
    WriteOutcome,
};

/// Chaos run configuration.
#[derive(Debug, Clone)]
pub struct ChaosRunConfig {
    /// Worker threads.
    pub workers: usize,
    /// Restart budget per program.
    pub max_restarts: usize,
    /// Maintenance tick interval (watchdog reaping, wall release, GC).
    pub maintenance_interval: Duration,
    /// Per-program deadline spanning all retries; a program blocked or
    /// restarting past it is aborted and counted, never spun forever.
    pub txn_deadline: Duration,
    /// How long to keep ticking maintenance after the last worker
    /// exits, so the watchdog reaps stragglers crashed near the end.
    /// Make this comfortably larger than the scheduler's lease.
    pub drain: Duration,
    /// Wall-release monitor sampling interval.
    pub monitor_interval: Duration,
    /// Enable the scheduler's obs sidecar so injected faults land in
    /// the decision trace as [`TraceEvent::CrashPoint`] records.
    pub trace: bool,
    /// Flight-recorder sampling stride: when `trace` is on and this is
    /// non-zero, every Nth transaction attempt gets a span tree, and
    /// every terminal — including a crash fault's abandonment and the
    /// watchdog's reap — closes it. `0` leaves the recorder inert.
    pub flight_sample: u64,
    /// Group-commit WAL to journal update transactions through. When
    /// set, each worker submits its committed transaction's redo events
    /// and counts the commit only after the durability ack; a commit
    /// whose ack fails because the WAL crashed lands in
    /// [`ChaosReport::wal_lost`] instead.
    pub wal: Option<Arc<GroupCommitWal>>,
}

impl Default for ChaosRunConfig {
    fn default() -> Self {
        ChaosRunConfig {
            workers: 4,
            max_restarts: 100,
            maintenance_interval: Duration::from_micros(50),
            txn_deadline: Duration::from_secs(5),
            drain: Duration::from_millis(50),
            monitor_interval: Duration::from_micros(200),
            trace: true,
            flight_sample: 0,
            wal: None,
        }
    }
}

/// What a chaos run did and what the monitor observed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Programs that committed.
    pub committed: usize,
    /// Abort-and-restart events.
    pub restarts: usize,
    /// Programs that exhausted their restart budget.
    pub gave_up: usize,
    /// Programs abandoned at their deadline.
    pub deadline_exceeded: usize,
    /// Crash faults fired (transactions abandoned without abort).
    pub crashed: usize,
    /// Stall faults fired.
    pub stalled: usize,
    /// Commit-delay faults fired.
    pub delayed: usize,
    /// Commits whose durability ack failed because the WAL crashed
    /// (the transaction committed in memory but is not on disk; it is
    /// *not* counted in `committed`). Always 0 without a WAL.
    pub wal_lost: usize,
    /// Counted commits that carried redo records through the WAL
    /// (update transactions; read-only commits have nothing to
    /// journal). Always 0 without a WAL.
    pub journaled: usize,
    /// Operation attempts across all workers.
    pub attempts: u64,
    /// Time walls released over the run (including the drain phase).
    pub wall_releases: u64,
    /// Longest observed gap between consecutive wall releases,
    /// including the tail from the last release to the end of the
    /// drain. When no wall was ever released this is the whole run —
    /// under HDD with a lease set, a bounded value is the proof that
    /// injected stragglers never wedged the time wall for good.
    pub max_release_gap: Duration,
    /// Wall-clock duration, drain included.
    pub elapsed: Duration,
}

/// Bounded exponential backoff for `Block` outcomes (same shape as the
/// sim driver: a few spin hints, then sleeps doubling to 256 µs).
fn backoff(spins: u32) {
    if spins <= 3 {
        std::hint::spin_loop();
    } else {
        let exp = (spins - 4).min(8);
        std::thread::sleep(Duration::from_micros(1u64 << exp));
    }
}

/// Run `programs` against `scheduler`, injecting `plan`'s faults.
pub fn run_chaos(
    scheduler: &dyn Scheduler,
    programs: Vec<TxnProgram>,
    plan: &FaultPlan,
    cfg: &ChaosRunConfig,
) -> ChaosReport {
    if cfg.trace {
        scheduler.metrics().obs.set_enabled(true);
        if cfg.flight_sample > 0 {
            scheduler
                .metrics()
                .obs
                .flight
                .set_sample_every(cfg.flight_sample);
        }
    }
    let mobs = &scheduler.metrics().obs;
    let flight_on = mobs.enabled() && mobs.flight.active();
    let walls = &scheduler.metrics().timewalls_released;
    let programs = &programs[..];
    let cursor = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let restarts = AtomicUsize::new(0);
    let gave_up = AtomicUsize::new(0);
    let deadline_exceeded = AtomicUsize::new(0);
    let crashed = AtomicUsize::new(0);
    let stalled = AtomicUsize::new(0);
    let delayed = AtomicUsize::new(0);
    let wal_lost = AtomicUsize::new(0);
    let journaled = AtomicUsize::new(0);
    let attempts = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let active_workers = AtomicUsize::new(cfg.workers);
    // (releases observed, max gap) — written once by the monitor.
    let observed: Mutex<(u64, Duration)> = Mutex::new((0, Duration::ZERO));

    let start = Instant::now();
    std::thread::scope(|scope| {
        // Maintenance ticker: outlives the workers by `drain` so the
        // watchdog reaps end-of-run corpses (the controller below flips
        // `done`).
        scope.spawn(|| {
            // ordering: Relaxed — advisory stop flag; one extra iteration after the store is harmless.
            while !done.load(Ordering::Relaxed) {
                scheduler.maintenance();
                std::thread::sleep(cfg.maintenance_interval);
            }
        });
        // Controller: wait for the workers, run the drain, stop.
        scope.spawn(|| {
            while active_workers.load(Ordering::Acquire) > 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            std::thread::sleep(cfg.drain);
            done.store(true, Ordering::Release);
        });
        // Wall-release monitor.
        scope.spawn(|| {
            // ordering: Relaxed — monitor peek at a release counter; a stale read only widens the observed gap.
            let mut last = walls.load(Ordering::Relaxed);
            let mut last_change = Instant::now();
            let mut max_gap = Duration::ZERO;
            // ordering: Relaxed — advisory stop flag; one extra iteration after the store is harmless.
            while !done.load(Ordering::Relaxed) {
                let cur = walls.load(Ordering::Relaxed); // ordering: monitor peek; staleness only widens the gap
                if cur != last {
                    max_gap = max_gap.max(last_change.elapsed());
                    last_change = Instant::now();
                    last = cur;
                }
                std::thread::sleep(cfg.monitor_interval);
            }
            max_gap = max_gap.max(last_change.elapsed());
            *observed
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = (last, max_gap);
        });
        // Re-bind shared state as references so worker closures can be
        // `move` (each also captures its worker index by value).
        let (
            cursor,
            committed,
            restarts,
            gave_up,
            deadline_exceeded,
            crashed,
            stalled,
            delayed,
            wal_lost,
            journaled,
            attempts,
            active_workers,
        ) = (
            &cursor,
            &committed,
            &restarts,
            &gave_up,
            &deadline_exceeded,
            &crashed,
            &stalled,
            &delayed,
            &wal_lost,
            &journaled,
            &attempts,
            &active_workers,
        );
        let wal = cfg.wal.as_deref();
        for wi in 0..cfg.workers {
            scope.spawn(move || {
                // Close a sampled flight with its terminal; a restart
                // begins a fresh transaction and thus a fresh flight.
                let flight_end = |traced: bool, txn: u64, terminal: Terminal| {
                    if traced {
                        mobs.flight.push(SpanEvent::End {
                            txn,
                            at_ns: mobs.flight.now_ns(),
                            terminal,
                        });
                    }
                };
                loop {
                    // ordering: Relaxed — work-claim ticket; uniqueness comes from fetch_add atomicity and the claimed program is immutable.
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(idx) else {
                        active_workers.fetch_sub(1, Ordering::AcqRel);
                        break;
                    };
                    if mobs.enabled() {
                        // Driver-progress gauge for hdd-top --chaos.
                        mobs.gauges
                            .set_driver_progress(idx as u64 + 1, programs.len() as u64);
                    }
                    let fault = plan.faults.get(idx).copied().unwrap_or_default();
                    // The deadline spans the program's whole life;
                    // restarts don't reset it.
                    let deadline = Instant::now() + cfg.txn_deadline;
                    // A fault fires at most once per program, even
                    // across restarts.
                    let mut armed = !matches!(fault, FaultKind::None);
                    let mut tries = 0usize;
                    'retry: loop {
                        let handle = scheduler.begin(&program.profile);
                        let traced = flight_on
                            && mobs.flight.admit(
                                handle.id.0,
                                handle.class.map_or(NO_CLASS, |c| c.0),
                                wi as u32,
                            );
                        // Redo events for the durability submit; a
                        // restart begins a fresh transaction and thus a
                        // fresh journal. Read-only transactions never
                        // touch the WAL.
                        let journal = wal.is_some() && handle.class.is_some();
                        let mut redo: Vec<ScheduleEvent> = Vec::new();
                        if journal {
                            redo.push(ScheduleEvent::Begin {
                                txn: handle.id,
                                start_ts: handle.start_ts,
                                class: handle.class,
                            });
                        }
                        let mut ctx = ReadCtx::default();
                        let mut pc = 0usize;
                        let mut ops = 0usize;
                        let mut spins = 0u32;
                        while pc < program.steps.len() {
                            // Fault point: before the next operation.
                            if armed {
                                match fault {
                                    FaultKind::Crash { after_ops } if ops >= after_ops => {
                                        mobs.emit(TraceEvent::CrashPoint {
                                            txn: handle.id.0,
                                            op_index: ops as u64,
                                            fault: FaultCode::Crash,
                                        });
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        crashed.fetch_add(1, Ordering::Relaxed);
                                        // Abandon WITHOUT abort: pending
                                        // versions and the registry
                                        // entry stay behind. The flight
                                        // closes as Abandoned here; if
                                        // the watchdog later reaps the
                                        // corpse its Reaped terminal
                                        // wins (last terminal wins).
                                        flight_end(traced, handle.id.0, Terminal::Abandoned);
                                        break 'retry;
                                    }
                                    FaultKind::Stall { after_ops, micros } if ops >= after_ops => {
                                        mobs.emit(TraceEvent::CrashPoint {
                                            txn: handle.id.0,
                                            op_index: ops as u64,
                                            fault: FaultCode::Stall,
                                        });
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        stalled.fetch_add(1, Ordering::Relaxed);
                                        armed = false;
                                        std::thread::sleep(Duration::from_micros(micros));
                                    }
                                    _ => {}
                                }
                            }
                            attempts.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                            let blocked = match &program.steps[pc] {
                                Step::Read(g) => match scheduler.read(&handle, *g) {
                                    ReadOutcome::Value(v) => {
                                        ctx.record(*g, v);
                                        pc += 1;
                                        ops += 1;
                                        spins = 0;
                                        false
                                    }
                                    ReadOutcome::Block => true,
                                    ReadOutcome::Abort => {
                                        scheduler.abort(&handle);
                                        tries += 1;
                                        if Instant::now() >= deadline {
                                            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                            deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                            flight_end(
                                                traced,
                                                handle.id.0,
                                                Terminal::DeadlineExceeded,
                                            );
                                            break 'retry;
                                        }
                                        if tries > cfg.max_restarts {
                                            gave_up.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                            flight_end(traced, handle.id.0, Terminal::GaveUp);
                                            break 'retry;
                                        }
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        restarts.fetch_add(1, Ordering::Relaxed);
                                        flight_end(traced, handle.id.0, Terminal::Aborted);
                                        continue 'retry;
                                    }
                                },
                                Step::Write(g, src) => {
                                    let v = src.resolve(&ctx);
                                    let journaled = if journal {
                                        Some(Arc::new(v.clone()))
                                    } else {
                                        None
                                    };
                                    match scheduler.write(&handle, *g, v) {
                                        WriteOutcome::Done => {
                                            if let Some(value) = journaled {
                                                redo.push(ScheduleEvent::Write {
                                                    txn: handle.id,
                                                    granule: *g,
                                                    version: handle.start_ts,
                                                    value,
                                                });
                                            }
                                            pc += 1;
                                            ops += 1;
                                            spins = 0;
                                            false
                                        }
                                        WriteOutcome::Block => true,
                                        WriteOutcome::Abort => {
                                            scheduler.abort(&handle);
                                            tries += 1;
                                            if Instant::now() >= deadline {
                                                // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                                deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                                flight_end(
                                                    traced,
                                                    handle.id.0,
                                                    Terminal::DeadlineExceeded,
                                                );
                                                break 'retry;
                                            }
                                            if tries > cfg.max_restarts {
                                                gave_up.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                                flight_end(traced, handle.id.0, Terminal::GaveUp);
                                                break 'retry;
                                            }
                                            // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                            restarts.fetch_add(1, Ordering::Relaxed);
                                            flight_end(traced, handle.id.0, Terminal::Aborted);
                                            continue 'retry;
                                        }
                                    }
                                }
                            };
                            if blocked {
                                if Instant::now() >= deadline {
                                    scheduler.abort(&handle);
                                    // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                    deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                    flight_end(traced, handle.id.0, Terminal::DeadlineExceeded);
                                    break 'retry;
                                }
                                spins += 1;
                                backoff(spins);
                            }
                        }
                        // Fault point: between the last operation and
                        // the commit (covers `after_ops` past the end).
                        if armed {
                            match fault {
                                FaultKind::Crash { .. } => {
                                    mobs.emit(TraceEvent::CrashPoint {
                                        txn: handle.id.0,
                                        op_index: ops as u64,
                                        fault: FaultCode::Crash,
                                    });
                                    // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                    crashed.fetch_add(1, Ordering::Relaxed);
                                    flight_end(traced, handle.id.0, Terminal::Abandoned);
                                    break 'retry;
                                }
                                FaultKind::Stall { micros, .. } => {
                                    mobs.emit(TraceEvent::CrashPoint {
                                        txn: handle.id.0,
                                        op_index: ops as u64,
                                        fault: FaultCode::Stall,
                                    });
                                    // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                    stalled.fetch_add(1, Ordering::Relaxed);
                                    armed = false;
                                    std::thread::sleep(Duration::from_micros(micros));
                                }
                                FaultKind::DelayCommit { micros } => {
                                    mobs.emit(TraceEvent::CrashPoint {
                                        txn: handle.id.0,
                                        op_index: ops as u64,
                                        fault: FaultCode::DelayCommit,
                                    });
                                    // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                    delayed.fetch_add(1, Ordering::Relaxed);
                                    armed = false;
                                    std::thread::sleep(Duration::from_micros(micros));
                                }
                                FaultKind::None => {}
                            }
                        }
                        let mut commit_spins = 0u32;
                        loop {
                            attempts.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                            match scheduler.commit(&handle) {
                                CommitOutcome::Committed(commit_ts) => {
                                    // Durability gate: the commit only
                                    // counts once its batch is on disk.
                                    if journal {
                                        redo.push(ScheduleEvent::Commit {
                                            txn: handle.id,
                                            commit_ts,
                                        });
                                        match wal.expect("journal implies wal").submit(&redo) {
                                            Ok(Some(ack)) => mobs.gauges.record_wal_batch(
                                                ack.frames as u64,
                                                ack.bytes as u64,
                                                ack.fsync_ns,
                                            ),
                                            Ok(None) => {}
                                            Err(_) => {
                                                // Committed in memory,
                                                // lost on disk: the WAL
                                                // crashed before the ack.
                                                // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                                wal_lost.fetch_add(1, Ordering::Relaxed);
                                                flight_end(
                                                    traced,
                                                    handle.id.0,
                                                    Terminal::Committed,
                                                );
                                                break 'retry;
                                            }
                                        }
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        journaled.fetch_add(1, Ordering::Relaxed);
                                    }
                                    // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                    committed.fetch_add(1, Ordering::Relaxed);
                                    flight_end(traced, handle.id.0, Terminal::Committed);
                                    break 'retry;
                                }
                                CommitOutcome::Block => {
                                    if Instant::now() >= deadline {
                                        scheduler.abort(&handle);
                                        deadline_exceeded.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                        flight_end(traced, handle.id.0, Terminal::DeadlineExceeded);
                                        break 'retry;
                                    }
                                    commit_spins += 1;
                                    backoff(commit_spins);
                                }
                                CommitOutcome::Aborted => {
                                    tries += 1;
                                    if Instant::now() >= deadline {
                                        // ordering: Relaxed — statistical counter; totals are read after the worker scope joins (the join edge orders them).
                                        deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                        flight_end(traced, handle.id.0, Terminal::DeadlineExceeded);
                                        break 'retry;
                                    }
                                    if tries > cfg.max_restarts {
                                        gave_up.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                        flight_end(traced, handle.id.0, Terminal::GaveUp);
                                        break 'retry;
                                    }
                                    restarts.fetch_add(1, Ordering::Relaxed); // ordering: stat counter; the scope join orders the final read
                                    flight_end(traced, handle.id.0, Terminal::Aborted);
                                    continue 'retry;
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let (wall_releases, max_release_gap) = *observed
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);

    ChaosReport {
        // ordering: Relaxed — read after the worker scope joined; the join edge orders every counter write before it.
        committed: committed.load(Ordering::Relaxed),
        restarts: restarts.load(Ordering::Relaxed),
        gave_up: gave_up.load(Ordering::Relaxed),
        deadline_exceeded: deadline_exceeded.load(Ordering::Relaxed),
        crashed: crashed.load(Ordering::Relaxed),
        stalled: stalled.load(Ordering::Relaxed),
        delayed: delayed.load(Ordering::Relaxed),
        wal_lost: wal_lost.load(Ordering::Relaxed),
        journaled: journaled.load(Ordering::Relaxed),
        attempts: attempts.load(Ordering::Relaxed),
        wall_releases,
        max_release_gap,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdd::{AccessSpec, HddConfig, HddScheduler, Hierarchy};
    use mvstore::MvStore;
    use std::sync::Arc;
    use txn_model::{
        ClassId, DependencyGraph, GranuleId, LogicalClock, SegmentId, TxnProfile, Value,
    };

    /// Two-class chain: c0 writes s0; c1 writes s1 and reads s0.
    fn setup(lease: Option<Duration>) -> HddScheduler {
        let s = SegmentId;
        let hierarchy = Hierarchy::build(
            2,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
            ],
        )
        .unwrap();
        let store = Arc::new(MvStore::new());
        for k in 0..4 {
            store.seed(GranuleId::new(s(0), k), Value::Int(0));
            store.seed(GranuleId::new(s(1), k), Value::Int(0));
        }
        let config = HddConfig {
            txn_lease: lease,
            ..HddConfig::default()
        };
        HddScheduler::new(
            Arc::new(hierarchy),
            store,
            Arc::new(LogicalClock::new()),
            config,
        )
    }

    fn mixed_programs(n: usize) -> Vec<TxnProgram> {
        (0..n)
            .map(|i| {
                let k = (i % 4) as u64;
                if i % 2 == 0 {
                    TxnProgram::builder("c0-bump")
                        .read(GranuleId::new(SegmentId(0), k))
                        .write_computed(GranuleId::new(SegmentId(0), k), move |ctx| {
                            Value::Int(ctx.int(GranuleId::new(SegmentId(0), k)) + 1)
                        })
                        .build(TxnProfile::update(ClassId(0), vec![SegmentId(0)]))
                } else {
                    TxnProgram::builder("c1-mirror")
                        .read(GranuleId::new(SegmentId(0), k))
                        .write_computed(GranuleId::new(SegmentId(1), k), move |ctx| {
                            Value::Int(ctx.int(GranuleId::new(SegmentId(0), k)))
                        })
                        .build(TxnProfile::update(
                            ClassId(1),
                            vec![SegmentId(0), SegmentId(1)],
                        ))
                }
            })
            .collect()
    }

    #[test]
    fn clean_plan_commits_everything() {
        let sched = setup(Some(Duration::from_millis(20)));
        let programs = mixed_programs(40);
        let plan = FaultPlan::clean(programs.len());
        let report = run_chaos(&sched, programs, &plan, &ChaosRunConfig::default());
        assert_eq!(report.committed, 40);
        assert_eq!(report.crashed + report.stalled + report.delayed, 0);
        assert_eq!(report.gave_up + report.deadline_exceeded, 0);
        let dg = DependencyGraph::from_log(sched.log());
        assert_eq!(dg.find_cycle(), None);
    }

    #[test]
    fn crash_faults_are_reaped_and_the_run_stays_serializable() {
        let sched = setup(Some(Duration::from_millis(5)));
        let programs = mixed_programs(30);
        let mut plan = FaultPlan::clean(programs.len());
        plan.faults[3] = FaultKind::Crash { after_ops: 1 };
        plan.faults[11] = FaultKind::Crash { after_ops: 2 };
        let cfg = ChaosRunConfig {
            drain: Duration::from_millis(40),
            ..ChaosRunConfig::default()
        };
        let report = run_chaos(&sched, programs, &plan, &cfg);
        assert_eq!(report.crashed, 2);
        assert_eq!(report.committed, 28);
        let snap = sched.metrics().snapshot();
        assert!(
            snap.rej_watchdog_abort >= 2,
            "the watchdog must reap both corpses: {snap:?}"
        );
        assert_eq!(
            DependencyGraph::from_log(sched.log()).find_cycle(),
            None,
            "stitched log (crashes reaped as aborts) stays serializable"
        );
        assert!(
            report.max_release_gap < Duration::from_secs(5),
            "time wall resumed: gap {:?}",
            report.max_release_gap
        );
        let kinds: Vec<&str> = sched
            .metrics()
            .obs
            .trace
            .drain()
            .iter()
            .map(|(_, e)| e.kind())
            .collect();
        assert!(kinds.contains(&"crash-point"));
        assert!(kinds.contains(&"watchdog-abort"));
    }

    #[test]
    fn crash_flights_close_as_abandoned_or_reaped_with_no_open_spans() {
        let sched = setup(Some(Duration::from_millis(5)));
        let programs = mixed_programs(24);
        let mut plan = FaultPlan::clean(programs.len());
        plan.faults[2] = FaultKind::Crash { after_ops: 1 };
        plan.faults[9] = FaultKind::Crash { after_ops: 2 };
        let cfg = ChaosRunConfig {
            drain: Duration::from_millis(50),
            flight_sample: 1,
            ..ChaosRunConfig::default()
        };
        let report = run_chaos(&sched, programs, &plan, &cfg);
        assert_eq!(report.crashed, 2);
        let log = obs::assemble(&sched.metrics().obs.flight.drain());
        assert_eq!(log.open, 0, "every admitted flight must close");
        let crash_terminals = log
            .flights
            .iter()
            .filter(|f| {
                matches!(
                    f.terminal,
                    Some(Terminal::Abandoned) | Some(Terminal::Reaped)
                )
            })
            .count();
        assert!(
            crash_terminals >= report.crashed,
            "each crash closes its flight as Abandoned (or Reaped by the \
             watchdog): {crash_terminals} < {}",
            report.crashed
        );
        let committed_flights = log
            .flights
            .iter()
            .filter(|f| f.terminal == Some(Terminal::Committed))
            .count();
        assert_eq!(committed_flights, report.committed);
    }

    #[test]
    fn wal_gate_journals_every_counted_commit() {
        use crate::disk::{DiskFaultKind, DiskFaultPlan};
        use txn_model::{decode_wal, GroupCommitConfig};

        let dir = std::env::temp_dir().join(format!("chaos-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chaos.wal");

        // Fault: the disk tears batch 3 mid-write and the WAL crashes.
        let fault = DiskFaultPlan::fixed(3, DiskFaultKind::TornWrite { keep_pct: 40 });
        let wal = Arc::new(
            GroupCommitWal::with_fault(
                &path,
                GroupCommitConfig {
                    max_batch_frames: 4,
                    ..GroupCommitConfig::default()
                },
                Some(Box::new(fault)),
            )
            .unwrap(),
        );

        let sched = setup(Some(Duration::from_millis(20)));
        let programs = mixed_programs(40);
        let plan = FaultPlan::clean(programs.len());
        let cfg = ChaosRunConfig {
            wal: Some(Arc::clone(&wal)),
            ..ChaosRunConfig::default()
        };
        let report = run_chaos(&sched, programs, &plan, &cfg);

        assert!(wal.crashed(), "the torn write must crash the WAL");
        assert!(
            report.wal_lost > 0,
            "commits after the crash lose their ack"
        );
        assert_eq!(
            report.committed + report.wal_lost,
            40,
            "every program either counts as durable or as wal-lost: {report:?}"
        );
        assert_eq!(
            report.journaled, report.committed,
            "all programs here are updates, so every counted commit journals: {report:?}"
        );

        // Every *counted* commit is on disk: the acked prefix of the WAL
        // decodes and contains at least `committed` Commit events... not
        // exactly `committed` — the torn batch itself may carry acked
        // frames from earlier batches only, so the decodable prefix holds
        // every durable commit.
        let bytes = std::fs::read(&path).unwrap();
        let (events, wal_report) = decode_wal(&bytes).unwrap();
        assert!(wal_report.torn(), "the tail tears at the victim batch");
        let durable_commits = events
            .iter()
            .filter(|e| matches!(e, ScheduleEvent::Commit { .. }))
            .count();
        assert!(
            durable_commits >= report.committed,
            "durable commits {durable_commits} < counted {}",
            report.committed
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stall_and_delay_faults_resolve_without_leaks() {
        let sched = setup(Some(Duration::from_millis(10)));
        let programs = mixed_programs(20);
        let mut plan = FaultPlan::clean(programs.len());
        // Stall well past the lease: the watchdog reaps mid-sleep and
        // the worker retries as a fresh transaction.
        plan.faults[2] = FaultKind::Stall {
            after_ops: 1,
            micros: 30_000,
        };
        plan.faults[7] = FaultKind::DelayCommit { micros: 500 };
        let report = run_chaos(&sched, programs, &plan, &ChaosRunConfig::default());
        assert_eq!(report.stalled, 1);
        assert_eq!(report.delayed, 1);
        assert_eq!(
            report.committed, 20,
            "stalled program retries after the reap and still commits: {report:?}"
        );
        assert_eq!(DependencyGraph::from_log(sched.log()).find_cycle(), None);
    }
}
