//! Seeded fault plans: which fault (if any) hits each program.

/// The fault injected into one program's worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// Run the program faithfully.
    #[default]
    None,
    /// Abandon the transaction without aborting it once `after_ops`
    /// operations have completed (clamped to the program length: a
    /// program shorter than `after_ops` crashes before its commit).
    Crash {
        /// Completed operations before the worker dies.
        after_ops: usize,
    },
    /// Sleep mid-transaction while holding the registry entry.
    Stall {
        /// Completed operations before the stall.
        after_ops: usize,
        /// Stall length in microseconds.
        micros: u64,
    },
    /// Sleep between the last operation and the commit request.
    DelayCommit {
        /// Delay length in microseconds.
        micros: u64,
    },
}

impl FaultKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::Crash { .. } => "crash",
            FaultKind::Stall { .. } => "stall",
            FaultKind::DelayCommit { .. } => "delay-commit",
        }
    }
}

/// Fault-mix knobs for [`FaultPlan::generate`]. Probabilities are
/// evaluated in order (crash, stall, delay); their sum should stay
/// below 1.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability a program's worker crashes mid-transaction.
    pub crash_prob: f64,
    /// Probability a program's worker stalls mid-transaction.
    pub stall_prob: f64,
    /// Probability a program's worker delays its commit.
    pub delay_prob: f64,
    /// Faults fire after `0..max_after_ops` completed operations.
    pub max_after_ops: usize,
    /// Stall length in microseconds.
    pub stall_micros: u64,
    /// Commit-delay length in microseconds.
    pub delay_micros: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            crash_prob: 0.05,
            stall_prob: 0.05,
            delay_prob: 0.05,
            max_after_ops: 4,
            stall_micros: 3_000,
            delay_micros: 500,
        }
    }
}

/// A reproducible per-program fault assignment.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// `faults[i]` is injected into the worker running program `i`.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// No faults for `n` programs (control runs).
    pub fn clean(n: usize) -> Self {
        FaultPlan {
            seed: 0,
            faults: vec![FaultKind::None; n],
        }
    }

    /// Draw a fault for each of `n` programs from `seed`.
    pub fn generate(seed: u64, n: usize, cfg: &ChaosConfig) -> Self {
        let mut rng = SplitMix64::new(seed);
        let faults = (0..n)
            .map(|_| {
                let p = rng.next_f64();
                let after_ops = rng.below(cfg.max_after_ops.max(1) as u64) as usize;
                if p < cfg.crash_prob {
                    FaultKind::Crash { after_ops }
                } else if p < cfg.crash_prob + cfg.stall_prob {
                    FaultKind::Stall {
                        after_ops,
                        micros: cfg.stall_micros,
                    }
                } else if p < cfg.crash_prob + cfg.stall_prob + cfg.delay_prob {
                    FaultKind::DelayCommit {
                        micros: cfg.delay_micros,
                    }
                } else {
                    FaultKind::None
                }
            })
            .collect();
        FaultPlan { seed, faults }
    }

    /// Number of planned faults of each kind: `(crash, stall, delay)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for f in &self.faults {
            match f {
                FaultKind::Crash { .. } => c.0 += 1,
                FaultKind::Stall { .. } => c.1 += 1,
                FaultKind::DelayCommit { .. } => c.2 += 1,
                FaultKind::None => {}
            }
        }
        c
    }
}

/// SplitMix64: tiny, seedable, and good enough for fault assignment.
/// Local copy — the harness must stay deterministic independent of any
/// driver RNG.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = ChaosConfig::default();
        let a = FaultPlan::generate(42, 100, &cfg);
        let b = FaultPlan::generate(42, 100, &cfg);
        assert_eq!(a.faults, b.faults);
        let c = FaultPlan::generate(43, 100, &cfg);
        assert_ne!(a.faults, c.faults, "different seeds diverge");
    }

    #[test]
    fn probabilities_shape_the_mix() {
        let all_crash = ChaosConfig {
            crash_prob: 1.0,
            stall_prob: 0.0,
            delay_prob: 0.0,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::generate(7, 50, &all_crash);
        assert_eq!(plan.counts(), (50, 0, 0));
        assert!(plan
            .faults
            .iter()
            .all(|f| matches!(f, FaultKind::Crash { after_ops } if *after_ops < 4)));

        let none = ChaosConfig {
            crash_prob: 0.0,
            stall_prob: 0.0,
            delay_prob: 0.0,
            ..ChaosConfig::default()
        };
        assert_eq!(FaultPlan::generate(7, 50, &none).counts(), (0, 0, 0));
    }

    #[test]
    fn default_mix_hits_every_kind_eventually() {
        let plan = FaultPlan::generate(1, 500, &ChaosConfig::default());
        let (c, s, d) = plan.counts();
        assert!(c > 0 && s > 0 && d > 0, "({c}, {s}, {d})");
        assert!(c + s + d < 500, "most programs run clean");
    }
}
