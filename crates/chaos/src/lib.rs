//! # chaos — deterministic fault injection for the HDD runtime
//!
//! A seeded harness that drives transaction programs against any
//! [`Scheduler`](txn_model::Scheduler) while injecting faults drawn
//! from a reproducible [`FaultPlan`]:
//!
//! * **Crash** — the worker abandons its transaction mid-program
//!   *without* aborting it, leaving pending versions in the store and a
//!   running interval in the activity registry — exactly the wreckage a
//!   killed process leaves behind. Under HDD this wedges `C_late` (and
//!   with it the time wall and the GC watermark) until the straggler
//!   watchdog reaps the corpse.
//! * **Stall** — the worker sleeps mid-transaction while holding its
//!   registry entry, modelling a GC pause or a scheduling hiccup. If
//!   the stall outlives the transaction lease, the watchdog aborts the
//!   transaction out from under the sleeper, whose next operation then
//!   fails with `Abort` and retries as a fresh transaction.
//! * **DelayCommit** — the worker sleeps just before committing,
//!   stretching the transaction's activity interval.
//!
//! Faults are assigned per program by [`FaultPlan::generate`] from a
//! seed, so a failing schedule replays exactly. A monitor thread
//! samples the scheduler's `timewalls_released` counter and reports the
//! longest gap between consecutive wall releases — the observable
//! measure of "the time wall resumed within a bounded interval" that
//! experiment E16 asserts on.
//!
//! The harness is scheduler-agnostic but only meaningful against
//! schedulers that survive abandonment: run HDD with
//! `HddConfig::txn_lease` set, or crashed programs pin the registry
//! forever.

#![warn(missing_docs)]

pub mod disk;
pub mod driver;
pub mod plan;

pub use disk::{DiskFaultKind, DiskFaultPlan};
pub use driver::{run_chaos, ChaosReport, ChaosRunConfig};
pub use plan::{ChaosConfig, FaultKind, FaultPlan};
