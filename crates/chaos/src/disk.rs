//! Seeded disk-fault schedules for the group-commit WAL.
//!
//! A [`DiskFaultPlan`] is a [`WalFault`] implementation drawn from a
//! seed: it picks one victim fsync batch and the way the disk betrays
//! it — a torn final write, an acked-but-dropped fsync followed by a
//! later crash (the "lying disk"), or a process kill just before or
//! just after the batch hits the page cache. Every kind ends with the
//! WAL in the crashed state, so a harness can hand the plan to
//! [`GroupCommitWal::with_fault`](txn_model::GroupCommitWal), drive
//! load until submits start failing, and then exercise real recovery
//! from whatever bytes actually reached the platter.
//!
//! The same seed always produces the same plan — a failing
//! crash/recover/resume schedule replays exactly.

use crate::plan::SplitMix64;
use txn_model::{FaultAction, WalFault};

/// How the disk betrays the victim batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The final write tears: only a prefix of the victim batch reaches
    /// the file before the crash. `keep_pct` percent of the batch's
    /// bytes survive (0 tears at the batch boundary).
    TornWrite {
        /// Percentage (0..100) of the victim batch's bytes that land.
        keep_pct: u64,
    },
    /// The disk acks fsyncs without persisting from the victim batch
    /// on, then the process crashes `crash_after` batches later — every
    /// acked-but-cached batch is lost despite the acks.
    DropFsync {
        /// Batches between the first lie and the crash that exposes it.
        crash_after: u64,
    },
    /// Crash before the victim batch reaches the page cache.
    CrashBeforeWrite,
    /// Crash after the write but before the fsync: the batch exists
    /// only in the (volatile) cache and is lost.
    CrashAfterWrite,
}

impl DiskFaultKind {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DiskFaultKind::TornWrite { .. } => "torn-write",
            DiskFaultKind::DropFsync { .. } => "drop-fsync",
            DiskFaultKind::CrashBeforeWrite => "crash-before-write",
            DiskFaultKind::CrashAfterWrite => "crash-after-write",
        }
    }
}

/// A reproducible single-victim disk-fault schedule.
#[derive(Debug, Clone)]
pub struct DiskFaultPlan {
    /// The seed the plan was drawn from.
    pub seed: u64,
    /// 1-based batch number the fault fires on.
    pub victim_batch: u64,
    /// The kind of betrayal.
    pub kind: DiskFaultKind,
}

impl DiskFaultPlan {
    /// Draw a plan from `seed`: the victim is a batch in
    /// `1..=max_batch` and the kind is uniform over the four
    /// betrayals.
    pub fn generate(seed: u64, max_batch: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let victim_batch = 1 + rng.below(max_batch.max(1));
        let kind = match rng.below(4) {
            0 => DiskFaultKind::TornWrite {
                keep_pct: rng.below(100),
            },
            1 => DiskFaultKind::DropFsync {
                crash_after: 1 + rng.below(3),
            },
            2 => DiskFaultKind::CrashBeforeWrite,
            _ => DiskFaultKind::CrashAfterWrite,
        };
        DiskFaultPlan {
            seed,
            victim_batch,
            kind,
        }
    }

    /// A fixed plan (deterministic regression cases).
    pub fn fixed(victim_batch: u64, kind: DiskFaultKind) -> Self {
        DiskFaultPlan {
            seed: 0,
            victim_batch,
            kind,
        }
    }
}

impl WalFault for DiskFaultPlan {
    fn on_batch(&self, batch: u64, bytes: usize) -> FaultAction {
        match self.kind {
            _ if batch < self.victim_batch => FaultAction::Write,
            DiskFaultKind::TornWrite { keep_pct } if batch == self.victim_batch => {
                FaultAction::TornWrite((bytes as u64 * keep_pct / 100) as usize)
            }
            DiskFaultKind::DropFsync { .. } if batch == self.victim_batch => FaultAction::DropFsync,
            DiskFaultKind::DropFsync { crash_after } => {
                if batch >= self.victim_batch + crash_after {
                    FaultAction::CrashBeforeWrite
                } else {
                    // The fsync keeps lying until the crash — a real
                    // flush in between would persist the cached victim
                    // batch and heal the lie.
                    FaultAction::DropFsync
                }
            }
            DiskFaultKind::CrashBeforeWrite if batch == self.victim_batch => {
                FaultAction::CrashBeforeWrite
            }
            DiskFaultKind::CrashAfterWrite if batch == self.victim_batch => {
                FaultAction::CrashAfterWrite
            }
            // Torn/crash kinds already crashed the WAL on the victim
            // batch; later batches never reach the fault hook.
            _ => FaultAction::Write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = DiskFaultPlan::generate(9, 8);
        let b = DiskFaultPlan::generate(9, 8);
        assert_eq!(a.victim_batch, b.victim_batch);
        assert_eq!(a.kind, b.kind);
        assert!((1..=8).contains(&a.victim_batch));
    }

    #[test]
    fn seeds_cover_every_kind() {
        let mut labels = std::collections::BTreeSet::new();
        for seed in 0..64 {
            labels.insert(DiskFaultPlan::generate(seed, 6).kind.label());
        }
        assert_eq!(labels.len(), 4, "{labels:?}");
    }

    #[test]
    fn torn_plan_fires_only_on_the_victim() {
        let plan = DiskFaultPlan::fixed(3, DiskFaultKind::TornWrite { keep_pct: 50 });
        assert_eq!(plan.on_batch(1, 100), FaultAction::Write);
        assert_eq!(plan.on_batch(2, 100), FaultAction::Write);
        assert_eq!(plan.on_batch(3, 100), FaultAction::TornWrite(50));
    }

    #[test]
    fn drop_fsync_crashes_later() {
        let plan = DiskFaultPlan::fixed(2, DiskFaultKind::DropFsync { crash_after: 2 });
        assert_eq!(plan.on_batch(1, 10), FaultAction::Write);
        assert_eq!(plan.on_batch(2, 10), FaultAction::DropFsync);
        assert_eq!(plan.on_batch(3, 10), FaultAction::DropFsync);
        assert_eq!(plan.on_batch(4, 10), FaultAction::CrashBeforeWrite);
    }
}
