//! Registry-aware crash recovery: rebuild a *scheduler*, not just a
//! store.
//!
//! `mvstore::recover` restores committed versions, but HDD's protocols
//! also depend on scheduler-side state the versions alone cannot
//! reconstruct:
//!
//! * the **activity registry** — Protocol A bounds and `C_late` (hence
//!   time walls) are functions of per-class activity *history*, so a
//!   recovered scheduler with an empty registry would answer `I_old(m)`
//!   queries about pre-crash instants wrongly;
//! * the **timestamp high-water mark** — Protocol B's proofs assume
//!   timestamps never repeat, so the recovered logical clock must start
//!   strictly above every pre-crash timestamp;
//! * the **transaction-id allocator** — recovered runs must not reuse
//!   pre-crash ids, or the stitched schedule log would attribute new
//!   work to dead transactions.
//!
//! [`resume`] rebuilds all three from the surviving log prefix (already
//! torn-tail-truncated by `txn_model::wal::decode_events`), synthesizes
//! abort records for transactions that were in flight at the crash
//! (their writes were rolled back by omission, so the abort is the
//! truthful account), and stitches the pre-crash events plus synthetic
//! aborts into the new scheduler's log — the combined log is what
//! post-run certification checks.

use crate::analysis::Hierarchy;
use crate::protocol::{HddConfig, HddScheduler, SchedulerCore};
use mvstore::{RecoveryReport, StorageBackend};
use obs::TraceEvent;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use txn_model::{ClassId, LogicalClock, Metrics, ScheduleEvent, ScheduleLog, Timestamp, TxnId};

/// Summary of a [`resume`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeReport {
    /// The store-level replay summary (redo/rollback counts, timestamp
    /// high-water mark, malformed-log anomaly counts).
    pub recovery: RecoveryReport,
    /// Transactions in flight at the crash, closed with synthetic abort
    /// records (their registry intervals would otherwise read as running
    /// forever, wedging `I_old` exactly like a crashed worker does live).
    pub in_flight_aborted: usize,
    /// The first timestamp the recovered clock can produce (strictly
    /// above the pre-crash high-water mark).
    pub resumes_after: Timestamp,
}

/// Recover a crashed HDD run into a scheduler ready to resume work.
///
/// `store` must hold the initial database image (seeded as at first
/// boot); `events` is the surviving schedule-log prefix. The returned
/// scheduler's clock starts strictly above the pre-crash high-water
/// mark, its registry holds every pre-crash activity interval (in-flight
/// transactions closed as aborts), and its schedule log already contains
/// the pre-crash events plus the synthetic aborts, so certification of
/// `scheduler.log()` after resumed work covers the whole stitched
/// history.
pub fn resume(
    hierarchy: Arc<Hierarchy>,
    store: Arc<dyn StorageBackend>,
    events: &[ScheduleEvent],
    config: HddConfig,
) -> (HddScheduler, ResumeReport) {
    let recovery = mvstore::recover(store.as_ref(), events);

    // Clock strictly above every pre-crash timestamp (Protocol B safety),
    // id allocator strictly above every pre-crash transaction id.
    let clock = Arc::new(LogicalClock::new());
    clock.advance_past(recovery.high_water_mark);
    let max_id = events.iter().map(|ev| ev.txn().0).max().unwrap_or(0);
    let core = SchedulerCore {
        store,
        clock: Arc::clone(&clock),
        log: Arc::new(ScheduleLog::new()),
        metrics: Arc::new(Metrics::default()),
        txn_ids: Arc::new(AtomicU64::new(max_id + 1)),
    };
    let sched = HddScheduler::with_core(hierarchy, core, config);

    // Reconstruct per-class activity intervals from the log: begin gives
    // the start, commit/abort the end. Whatever never ended was in
    // flight at the crash; close it with a synthetic post-recovery abort
    // (its writes were already rolled back by omission).
    #[derive(Clone, Copy)]
    struct Lifetime {
        class: ClassId,
        start: Timestamp,
        end: Option<(Timestamp, bool)>,
    }
    let mut lifetimes: HashMap<TxnId, Lifetime> = HashMap::new();
    for ev in events {
        match ev {
            ScheduleEvent::Begin {
                txn,
                start_ts,
                class: Some(class),
            } => {
                lifetimes.insert(
                    *txn,
                    Lifetime {
                        class: *class,
                        start: *start_ts,
                        end: None,
                    },
                );
            }
            ScheduleEvent::Commit { txn, commit_ts } => {
                if let Some(l) = lifetimes.get_mut(txn) {
                    l.end = Some((*commit_ts, true));
                }
            }
            ScheduleEvent::Abort { txn, abort_ts } => {
                if let Some(l) = lifetimes.get_mut(txn) {
                    l.end = Some((*abort_ts, false));
                }
            }
            _ => {}
        }
    }

    // Stitch: the surviving prefix first (ticket order is preserved by
    // recording sequentially), then synthetic aborts for in-flight txns.
    for ev in events {
        sched.core().log.record(ev.clone());
    }
    let mut in_flight: Vec<(TxnId, Lifetime)> = lifetimes
        .iter()
        .filter(|(_, l)| l.end.is_none())
        .map(|(id, l)| (*id, *l))
        .collect();
    in_flight.sort_by_key(|&(id, _)| id);
    let in_flight_aborted = in_flight.len();
    let mut intervals: HashMap<ClassId, Vec<(Timestamp, Option<Timestamp>, bool)>> = HashMap::new();
    for (id, l) in &mut in_flight {
        let abort_ts = clock.tick();
        l.end = Some((abort_ts, false));
        sched
            .core()
            .log
            .record(ScheduleEvent::Abort { txn: *id, abort_ts });
    }
    for l in lifetimes.values().filter(|l| l.end.is_some()) {
        let (end, committed) = l.end.expect("filtered");
        intervals
            .entry(l.class)
            .or_default()
            .push((l.start, Some(end), committed));
    }
    for (_, l) in &in_flight {
        let (end, committed) = l.end.expect("closed above");
        intervals
            .entry(l.class)
            .or_default()
            .push((l.start, Some(end), committed));
    }
    for (class, mut ivs) in intervals {
        ivs.sort_by_key(|&(start, _, _)| start);
        sched.registry().absorb_class(class, &ivs);
    }

    let resumes_after = recovery.high_water_mark.succ();
    // Publish replay progress on the gauge board so a scraper watching
    // the recovering process sees how far redo got and whether the log
    // was pristine.
    sched
        .core()
        .metrics
        .obs
        .gauges
        .set_recovery_progress(events.len() as u64, recovery.anomalies.total() as u64);
    // Recovery is a rare, load-bearing event: record it in the trace
    // ring unconditionally (bypassing the enable gate, which no caller
    // has had a chance to set on the freshly built scheduler).
    sched
        .core()
        .metrics
        .obs
        .trace
        .push(TraceEvent::RecoveryReplay {
            events: events.len() as u64,
            redone: recovery.redone as u64,
            rolled_back: recovery.rolled_back as u64,
            in_flight_aborted: in_flight_aborted as u64,
            high_water_mark: recovery.high_water_mark.raw(),
        });
    let report = ResumeReport {
        recovery,
        in_flight_aborted,
        resumes_after,
    };
    (sched, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AccessSpec;
    use mvstore::MvStore;
    use txn_model::{
        CommitOutcome, DependencyGraph, GranuleId, ReadOutcome, Scheduler, SegmentId, TxnProfile,
        Value, WriteOutcome,
    };

    fn s(i: u32) -> SegmentId {
        SegmentId(i)
    }

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(s(seg), key)
    }

    fn chain_hierarchy() -> Arc<Hierarchy> {
        Arc::new(
            Hierarchy::build(
                2,
                &[
                    AccessSpec::new("c0", vec![s(0)], vec![]),
                    AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                ],
            )
            .unwrap(),
        )
    }

    fn seeded_store() -> Arc<MvStore> {
        let store = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(0));
        store.seed(g(1, 1), Value::Int(0));
        store
    }

    /// A pre-crash run: t1 commits a write, t2 is cut down mid-flight
    /// (its write is logged, its commit is not).
    fn pre_crash_events() -> Vec<ScheduleEvent> {
        let sched = HddScheduler::new(
            chain_hierarchy(),
            seeded_store(),
            Arc::new(LogicalClock::new()),
            HddConfig::default(),
        );
        let t1 = sched.begin(&TxnProfile::update(ClassId(0), vec![]));
        assert_eq!(
            sched.write(&t1, g(0, 1), Value::Int(10)),
            WriteOutcome::Done
        );
        assert!(matches!(sched.commit(&t1), CommitOutcome::Committed(_)));
        let t2 = sched.begin(&TxnProfile::update(ClassId(0), vec![]));
        assert_eq!(
            sched.write(&t2, g(0, 1), Value::Int(99)),
            WriteOutcome::Done
        );
        // Crash here: t2 never commits.
        sched.core().log.events()
    }

    #[test]
    fn resume_restores_store_clock_registry_and_ids() {
        let events = pre_crash_events();
        let hwm = events
            .iter()
            .map(|ev| match ev {
                ScheduleEvent::Begin { start_ts, .. } => *start_ts,
                ScheduleEvent::Write { version, .. } => *version,
                ScheduleEvent::Commit { commit_ts, .. } => *commit_ts,
                ScheduleEvent::Abort { abort_ts, .. } => *abort_ts,
                ScheduleEvent::Read { version, .. } => *version,
            })
            .max()
            .unwrap();
        let (sched, report) = resume(
            chain_hierarchy(),
            seeded_store(),
            &events,
            HddConfig::default(),
        );
        // Store: committed write redone, in-flight write rolled back.
        assert_eq!(sched.store().latest_value(g(0, 1)), Value::Int(10));
        assert_eq!(report.recovery.redone, 1);
        assert_eq!(report.recovery.rolled_back, 1);
        assert!(report.recovery.anomalies.is_clean());
        assert_eq!(report.in_flight_aborted, 1);
        // Clock: strictly above the pre-crash high-water mark.
        assert!(report.resumes_after > hwm);
        // Registry: nothing still reads as running, so bounds advance.
        assert!(sched.registry().oldest_running().is_none());
        // New work draws fresh ids and fresh timestamps.
        let t = sched.begin(&TxnProfile::update(ClassId(0), vec![]));
        assert!(events.iter().all(|ev| ev.txn() != t.id), "id not reused");
        assert!(t.start_ts > hwm, "timestamp not reused");
        assert_eq!(sched.write(&t, g(0, 1), Value::Int(11)), WriteOutcome::Done);
        assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        // The stitched log (pre-crash + synthetic abort + resumed work)
        // is serializable as one history.
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn resumed_cross_class_reads_see_recovered_state() {
        let events = pre_crash_events();
        let (sched, _) = resume(
            chain_hierarchy(),
            seeded_store(),
            &events,
            HddConfig::default(),
        );
        // A class-1 transaction reads D0 via Protocol A: the bound is
        // computed over the absorbed registry history and must serve the
        // recovered committed value, not the rolled-back one.
        let t = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0)]));
        match sched.read(&t, g(0, 1)) {
            ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(10)),
            other => panic!("expected recovered value, got {other:?}"),
        }
        assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn resume_stitches_the_log_and_traces_the_replay() {
        let events = pre_crash_events();
        let (sched, report) = resume(
            chain_hierarchy(),
            seeded_store(),
            &events,
            HddConfig::default(),
        );
        let stitched = sched.core().log.events();
        assert_eq!(stitched.len(), events.len() + report.in_flight_aborted);
        let aborts = stitched
            .iter()
            .filter(|ev| matches!(ev, ScheduleEvent::Abort { .. }))
            .count();
        assert_eq!(aborts, 1);
        // The replay is recorded in the trace ring even with obs off.
        let kinds: Vec<&str> = sched
            .core()
            .metrics
            .obs
            .trace
            .drain()
            .iter()
            .map(|(_, e)| e.kind())
            .collect();
        assert!(kinds.contains(&"recovery-replay"));
    }

    #[test]
    fn gauge_delta_saturates_across_a_crash_resume_cycle() {
        // Mirror of `MetricsSnapshot::delta`'s resume coverage for the
        // gauge board: an interval gate holding a pre-crash snapshot
        // and subtracting a post-`resume` one (fresh board, lower
        // counts) must clamp to zero, never wrap a u64.
        let hierarchy = chain_hierarchy();
        let store = seeded_store();
        let sched = HddScheduler::new(
            Arc::clone(&hierarchy),
            Arc::clone(&store) as Arc<dyn StorageBackend>,
            Arc::new(LogicalClock::new()),
            HddConfig::default(),
        );
        sched.metrics().obs.set_enabled(true);
        // Two cross-class reads populate the (c1, D0) staleness cell.
        for _ in 0..2 {
            let t = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0)]));
            assert!(matches!(sched.read(&t, g(0, 1)), ReadOutcome::Value(_)));
            assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        }
        sched.refresh_gauges_now();
        let before = sched.metrics().obs.gauges.snapshot();
        assert_eq!(before.staleness_for(1, 0).unwrap().hist.count, 2);
        assert!(before.clock_now > 0);
        let events = sched.core().log.events();
        drop(sched); // crash

        // Resume builds a fresh scheduler (fresh gauge board); one
        // post-crash cross-read leaves the new cell at count 1 < 2.
        let (resumed, _) = resume(hierarchy, seeded_store(), &events, HddConfig::default());
        resumed.metrics().obs.set_enabled(true);
        let t = resumed.begin(&TxnProfile::update(ClassId(1), vec![s(0)]));
        assert!(matches!(resumed.read(&t, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(resumed.commit(&t), CommitOutcome::Committed(_)));
        resumed.refresh_gauges_now();
        let after = resumed.metrics().obs.gauges.snapshot();
        assert_eq!(after.staleness_for(1, 0).unwrap().hist.count, 1);

        let d = after.delta(&before);
        let cell = d.staleness_for(1, 0).expect("cell survives the delta");
        // The later board counts 1 where the earlier counted 2: a
        // plain subtraction would wrap to ~u64::MAX. The per-bucket
        // delta must saturate instead — the interval can never report
        // more samples than the post-resume board actually recorded.
        assert!(cell.hist.count <= 1, "clamped, not wrapped: {cell:?}");
        assert!(cell.hist.sum <= after.staleness_for(1, 0).unwrap().hist.sum);
        assert!(cell.hist.count < u64::MAX / 2, "no u64 wrap-around");
        // Levels pass through as the later snapshot's values — the
        // recovered clock sits above the pre-crash one, so the delta's
        // clock is the live reading, not a subtraction.
        assert_eq!(d.clock_now, after.clock_now);
        assert!(d.clock_now >= before.clock_now);
    }
}
