//! Critical paths, undirected critical paths, and the `higher-than`
//! partial order over a validated transitive semi-tree.
//!
//! Properties from Section 3.1 realized here:
//! * a path is critical iff composed of critical arcs alone;
//! * there is at most one critical path between any pair of nodes;
//! * `T_j ↑ T_i` (T_j *higher than* T_i) iff the critical path `CP_i^j`
//!   exists;
//! * between any pair of nodes of one component there is exactly one
//!   **undirected critical path** (`UCP`, Section 5.1).
//!
//! All tables are precomputed from the transitive reduction (whose arcs
//! are the critical arcs); node counts are small, so O(n²) storage is
//! irrelevant.

use super::digraph::Digraph;

/// One `E_i^j` step: `(is_up, higher_class)` for a UCP arc — upward
/// steps apply the class's `I_old`, downward steps its `C_late`.
pub type UcpStep = (bool, u32);

/// Precomputed path tables over a semi-tree reduction.
#[derive(Debug, Clone)]
pub struct PathTables {
    reduction: Digraph,
    /// `cp[i][j]` = the critical path i → ... → j (inclusive), if any.
    cp: Vec<Vec<Option<Vec<usize>>>>,
    /// `ucp[i][j]` = the undirected critical path i ... j (inclusive), if
    /// i and j are in the same component.
    ucp: Vec<Vec<Option<Vec<usize>>>>,
    /// Hot-path hop table: `cp_hops[i*n + j]` = the classes of `CP_i^j`
    /// **excluding `i`**, as dense `u32`s — exactly the fold order of
    /// `A_i^j` (and, reversed, of `B_j^i`). One pointer chase per
    /// activity-link evaluation instead of nested `Vec` indexing.
    cp_hops: Vec<Option<Box<[u32]>>>,
    /// Like `cp_hops` but **including `i`** — the fold order of
    /// `A`-from-below (read-only transactions on a chain).
    cp_hops_incl: Vec<Option<Box<[u32]>>>,
    /// Hot-path step table for `E_i^j`: for each UCP arc, `(is_up,
    /// class)` where `class` is the *higher* class of the arc — upward
    /// steps apply its `I_old`, downward steps its `C_late`.
    ucp_steps: Vec<Option<Box<[UcpStep]>>>,
}

impl PathTables {
    /// Build tables from a semi-tree `reduction` (the critical arcs).
    pub fn new(reduction: Digraph) -> Self {
        let n = reduction.node_count();
        let mut cp = vec![vec![None; n]; n];
        let mut ucp = vec![vec![None; n]; n];

        for s in 0..n {
            cp[s][s] = Some(vec![s]);
            ucp[s][s] = Some(vec![s]);
            // Directed reach: unique paths because the reduction is a
            // semi-tree (at most one undirected path ⇒ at most one
            // directed one).
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                for v in reduction.out_neighbors(u) {
                    if cp[s][v].is_none() {
                        let mut path = cp[s][u].clone().expect("parent path exists");
                        path.push(v);
                        cp[s][v] = Some(path);
                        stack.push(v);
                    }
                }
            }
            // Undirected reach (BFS over arcs in both directions).
            let mut stack = vec![s];
            while let Some(u) = stack.pop() {
                let mut nbrs = reduction.out_neighbors(u);
                nbrs.extend(reduction.in_neighbors(u));
                for v in nbrs {
                    if ucp[s][v].is_none() {
                        let mut path = ucp[s][u].clone().expect("parent path exists");
                        path.push(v);
                        ucp[s][v] = Some(path);
                        stack.push(v);
                    }
                }
            }
        }

        // Derive the dense hop/step tables the activity-link functions
        // fold over (see field docs).
        let mut cp_hops = vec![None; n * n];
        let mut cp_hops_incl = vec![None; n * n];
        let mut ucp_steps = vec![None; n * n];
        for i in 0..n {
            for j in 0..n {
                if let Some(path) = cp[i][j].as_deref() {
                    cp_hops[i * n + j] = Some(path[1..].iter().map(|&c| c as u32).collect());
                    cp_hops_incl[i * n + j] = Some(path.iter().map(|&c| c as u32).collect());
                }
                if let Some(path) = ucp[i][j].as_deref() {
                    ucp_steps[i * n + j] = Some(
                        path.windows(2)
                            .map(|w| {
                                if reduction.has_arc(w[0], w[1]) {
                                    (true, w[1] as u32) // up into w[1]
                                } else {
                                    debug_assert!(reduction.has_arc(w[1], w[0]));
                                    (false, w[0] as u32) // down out of w[0]
                                }
                            })
                            .collect(),
                    );
                }
            }
        }

        PathTables {
            reduction,
            cp,
            ucp,
            cp_hops,
            cp_hops_incl,
            ucp_steps,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.reduction.node_count()
    }

    /// The critical arcs (the reduction).
    pub fn reduction(&self) -> &Digraph {
        &self.reduction
    }

    /// True iff `u → v` is a critical arc.
    pub fn is_critical_arc(&self, u: usize, v: usize) -> bool {
        self.reduction.has_arc(u, v)
    }

    /// The critical path `CP_i^j` (nodes `i ... j` inclusive), if any.
    pub fn critical_path(&self, i: usize, j: usize) -> Option<&[usize]> {
        self.cp[i][j].as_deref()
    }

    /// The classes `A_i^j` folds `I_old` over, in order (the critical
    /// path excluding `i`). `None` when no critical path exists.
    pub fn a_hops(&self, i: usize, j: usize) -> Option<&[u32]> {
        self.cp_hops[i * self.node_count() + j].as_deref()
    }

    /// Like [`a_hops`](Self::a_hops) but including `i` itself (the
    /// `A`-from-below fold order).
    pub fn a_hops_inclusive(&self, i: usize, j: usize) -> Option<&[u32]> {
        self.cp_hops_incl[i * self.node_count() + j].as_deref()
    }

    /// The `(is_up, class)` steps `E_i^j` walks over `UCP_i^j`, where
    /// `class` is the higher class of each arc. `None` when `i` and `j`
    /// are in different components.
    pub fn e_steps(&self, i: usize, j: usize) -> Option<&[UcpStep]> {
        self.ucp_steps[i * self.node_count() + j].as_deref()
    }

    /// `T_j ↑ T_i`: node `j` is strictly higher than node `i`.
    pub fn higher_than(&self, j: usize, i: usize) -> bool {
        i != j && self.cp[i][j].is_some()
    }

    /// `j` is higher than or equal to `i`.
    pub fn higher_or_equal(&self, j: usize, i: usize) -> bool {
        self.cp[i][j].is_some()
    }

    /// True iff `i` and `j` lie on one critical path (comparable under ↑,
    /// or equal).
    pub fn on_one_critical_path(&self, i: usize, j: usize) -> bool {
        self.cp[i][j].is_some() || self.cp[j][i].is_some()
    }

    /// True iff *all* of `nodes` lie on one critical path.
    ///
    /// In a semi-tree this holds iff the nodes are pairwise comparable
    /// under ↑ — they then all sit on `CP_min^max`.
    pub fn all_on_one_critical_path(&self, nodes: &[usize]) -> bool {
        nodes
            .iter()
            .all(|&a| nodes.iter().all(|&b| self.on_one_critical_path(a, b)))
    }

    /// The lowest node of a set that lies on one critical path (the node
    /// every other is higher than or equal to). `None` when the set is
    /// empty or not a chain.
    pub fn lowest_of_chain(&self, nodes: &[usize]) -> Option<usize> {
        let &first = nodes.first()?;
        let mut low = first;
        for &v in &nodes[1..] {
            if self.higher_or_equal(low, v) {
                low = v;
            } else if !self.higher_or_equal(v, low) {
                return None;
            }
        }
        Some(low)
    }

    /// The undirected critical path `UCP_i^j` (nodes inclusive), if `i`
    /// and `j` are connected.
    pub fn undirected_critical_path(&self, i: usize, j: usize) -> Option<&[usize]> {
        self.ucp[i][j].as_deref()
    }

    /// The **lowest-level** nodes: nodes with no node strictly below them
    /// (no incoming critical arc). These are the anchor candidates for
    /// time walls (Section 5.2 picks "a starting class of one of the
    /// lowest levels").
    pub fn lowest_nodes(&self) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&v| self.reduction.in_neighbors(v).is_empty())
            .collect()
    }

    /// Connected components of the (undirected) reduction forest.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            let comp: Vec<usize> = (0..n).filter(|&v| self.ucp[s][v].is_some()).collect();
            for &v in &comp {
                seen[v] = true;
            }
            comps.push(comp);
        }
        comps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example: a tree with arcs pointing lower → higher.
    ///   3 → 1 → 0,  4 → 1,  2 → 0
    /// (0 is the top; 3, 4, 2 are leaves/lowest.)
    fn tree() -> PathTables {
        PathTables::new(Digraph::from_arcs(5, &[(1, 0), (2, 0), (3, 1), (4, 1)]))
    }

    #[test]
    fn critical_paths_follow_arcs() {
        let t = tree();
        assert_eq!(t.critical_path(3, 0).unwrap(), &[3, 1, 0]);
        assert_eq!(t.critical_path(3, 1).unwrap(), &[3, 1]);
        assert!(t.critical_path(0, 3).is_none());
        assert!(t.critical_path(3, 4).is_none());
        assert_eq!(t.critical_path(2, 2).unwrap(), &[2]);
    }

    #[test]
    fn higher_than_is_strict_partial_order() {
        let t = tree();
        assert!(t.higher_than(0, 3));
        assert!(t.higher_than(1, 3));
        assert!(!t.higher_than(3, 0));
        assert!(!t.higher_than(3, 3));
        assert!(!t.higher_than(4, 3)); // siblings incomparable
        assert!(t.higher_or_equal(3, 3));
    }

    #[test]
    fn one_critical_path_checks() {
        let t = tree();
        assert!(t.on_one_critical_path(3, 0));
        assert!(!t.on_one_critical_path(3, 4));
        assert!(t.all_on_one_critical_path(&[3, 1, 0]));
        assert!(!t.all_on_one_critical_path(&[3, 4]));
        assert!(t.all_on_one_critical_path(&[2]));
        assert_eq!(t.lowest_of_chain(&[0, 1, 3]), Some(3));
        assert_eq!(t.lowest_of_chain(&[3, 4]), None);
        assert_eq!(t.lowest_of_chain(&[]), None);
    }

    #[test]
    fn ucp_between_siblings_goes_through_parent() {
        let t = tree();
        assert_eq!(t.undirected_critical_path(3, 4).unwrap(), &[3, 1, 4]);
        assert_eq!(t.undirected_critical_path(3, 2).unwrap(), &[3, 1, 0, 2]);
        assert_eq!(t.undirected_critical_path(3, 0).unwrap(), &[3, 1, 0]);
    }

    #[test]
    fn hop_tables_match_paths() {
        let t = tree();
        // a_hops = CP minus the base; inclusive keeps the base.
        assert_eq!(t.a_hops(3, 0).unwrap(), &[1, 0]);
        assert_eq!(t.a_hops_inclusive(3, 0).unwrap(), &[3, 1, 0]);
        assert_eq!(t.a_hops(2, 2).unwrap(), &[] as &[u32]);
        assert!(t.a_hops(0, 3).is_none());
        // e_steps: 3 → 1 → 4 is up into 1 then down out of 1.
        assert_eq!(t.e_steps(3, 4).unwrap(), &[(true, 1), (false, 1)]);
        // 3 → 1 → 0 → 2: up, up, down out of 0.
        assert_eq!(
            t.e_steps(3, 2).unwrap(),
            &[(true, 1), (true, 0), (false, 0)]
        );
        assert_eq!(t.e_steps(4, 4).unwrap(), &[] as &[(bool, u32)]);
    }

    #[test]
    fn lowest_nodes_are_leaves() {
        let t = tree();
        assert_eq!(t.lowest_nodes(), vec![2, 3, 4]);
    }

    #[test]
    fn components_of_forest() {
        let t = PathTables::new(Digraph::from_arcs(5, &[(0, 1), (2, 3)]));
        let comps = t.components();
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3]));
        assert!(comps.contains(&vec![4]));
        assert!(t.undirected_critical_path(0, 2).is_none());
    }
}
