//! Graph-theoretic machinery of Section 3: digraphs, transitive
//! closure/reduction, semi-trees, transitive semi-trees, critical paths,
//! undirected critical paths and the `higher-than` partial order.

pub mod digraph;
pub mod paths;
pub mod semitree;

pub use digraph::Digraph;
pub use paths::PathTables;
pub use semitree::{
    check_semi_tree, check_transitive_semi_tree, is_semi_tree, is_transitive_semi_tree,
    SemiTreeViolation,
};
