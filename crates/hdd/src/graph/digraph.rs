//! A small dense digraph over `0..n` node indices.
//!
//! Hierarchies have few nodes (one per data segment), so an adjacency
//! matrix plus neighbor lists keeps every operation simple and fast. The
//! graph-theoretic machinery of Section 3 (transitive closure/reduction,
//! semi-trees) builds on this type.

use std::fmt;

/// A directed graph over nodes `0..n`.
#[derive(Clone, PartialEq, Eq)]
pub struct Digraph {
    n: usize,
    /// Row-major adjacency matrix: `m[u * n + v]` ⇔ arc u → v.
    m: Vec<bool>,
}

impl Digraph {
    /// An arc-less digraph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Digraph {
            n,
            m: vec![false; n * n],
        }
    }

    /// Build from an arc list.
    pub fn from_arcs(n: usize, arcs: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in arcs {
            g.add_arc(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Add arc `u → v`. Self-loops are ignored (a DHG has none by
    /// construction: the defining condition requires `i ≠ j`).
    pub fn add_arc(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "node out of range");
        if u != v {
            self.m[u * self.n + v] = true;
        }
    }

    /// Remove arc `u → v`.
    pub fn remove_arc(&mut self, u: usize, v: usize) {
        self.m[u * self.n + v] = false;
    }

    /// True iff arc `u → v` exists.
    #[inline]
    pub fn has_arc(&self, u: usize, v: usize) -> bool {
        self.m[u * self.n + v]
    }

    /// All arcs as `(u, v)` pairs.
    pub fn arcs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in 0..self.n {
            for v in 0..self.n {
                if self.has_arc(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.m.iter().filter(|&&b| b).count()
    }

    /// Out-neighbors of `u`.
    pub fn out_neighbors(&self, u: usize) -> Vec<usize> {
        (0..self.n).filter(|&v| self.has_arc(u, v)).collect()
    }

    /// In-neighbors of `u`.
    pub fn in_neighbors(&self, u: usize) -> Vec<usize> {
        (0..self.n).filter(|&v| self.has_arc(v, u)).collect()
    }

    /// True iff the digraph has no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topo_order().is_some()
    }

    /// A topological order (arcs point from earlier to later), or `None`
    /// if cyclic.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for (_, v) in self.arcs() {
            indeg[v] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for v in self.out_neighbors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Find any directed cycle, as a node list `v0 → v1 → ... → v0`.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            W,
            G,
            B,
        }
        let mut color = vec![C::W; self.n];
        let mut parent = vec![usize::MAX; self.n];
        for s in 0..self.n {
            if color[s] != C::W {
                continue;
            }
            let mut stack = vec![(s, 0usize)];
            color[s] = C::G;
            while let Some(&mut (u, ref mut i)) = stack.last_mut() {
                let outs = self.out_neighbors(u);
                if *i < outs.len() {
                    let v = outs[*i];
                    *i += 1;
                    match color[v] {
                        C::W => {
                            color[v] = C::G;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        C::G => {
                            let mut cycle = vec![v];
                            let mut cur = u;
                            while cur != v {
                                cycle.push(cur);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        C::B => {}
                    }
                } else {
                    color[u] = C::B;
                    stack.pop();
                }
            }
        }
        None
    }

    /// The transitive closure (Warshall).
    pub fn transitive_closure(&self) -> Digraph {
        let n = self.n;
        let mut c = self.clone();
        for k in 0..n {
            for u in 0..n {
                if c.m[u * n + k] {
                    for v in 0..n {
                        if c.m[k * n + v] {
                            c.m[u * n + v] = true;
                        }
                    }
                }
            }
        }
        // Closure of a DAG has no self-loops; drop any introduced by
        // cycles (callers check acyclicity separately).
        for v in 0..n {
            c.m[v * n + v] = false;
        }
        c
    }

    /// The transitive reduction. **Only valid for acyclic digraphs** (the
    /// unique minimal graph with the same closure); callers must check
    /// [`Self::is_acyclic`] first.
    pub fn transitive_reduction(&self) -> Digraph {
        debug_assert!(self.is_acyclic(), "reduction requires a DAG");
        let closure = self.transitive_closure();
        let n = self.n;
        let mut r = Digraph::new(n);
        for u in 0..n {
            for v in 0..n {
                if !self.has_arc(u, v) && !closure.has_arc(u, v) {
                    continue;
                }
                // Arc u→v of the closure is critical iff there is no
                // intermediate w with u→w and w→v in the closure.
                if closure.has_arc(u, v) {
                    let redundant = (0..n).any(|w| {
                        w != u && w != v && closure.has_arc(u, w) && closure.has_arc(w, v)
                    });
                    if !redundant {
                        r.add_arc(u, v);
                    }
                }
            }
        }
        r
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, arcs={:?})", self.n, self.arcs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_and_neighbors() {
        let g = Digraph::from_arcs(4, &[(0, 1), (1, 2), (0, 2)]);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.out_neighbors(0), vec![1, 2]);
        assert_eq!(g.in_neighbors(2), vec![0, 1]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Digraph::new(2);
        g.add_arc(1, 1);
        assert_eq!(g.arc_count(), 0);
    }

    #[test]
    fn acyclicity_and_topo() {
        let dag = Digraph::from_arcs(4, &[(0, 1), (1, 2), (0, 3)]);
        assert!(dag.is_acyclic());
        let order = dag.topo_order().unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1) && pos(1) < pos(2) && pos(0) < pos(3));

        let cyc = Digraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!cyc.is_acyclic());
        let cycle = cyc.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn two_cycle_detected() {
        let g = Digraph::from_arcs(2, &[(0, 1), (1, 0)]);
        assert!(!g.is_acyclic());
        assert_eq!(g.find_cycle().unwrap().len(), 2);
    }

    #[test]
    fn closure_of_chain() {
        let g = Digraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let c = g.transitive_closure();
        assert!(c.has_arc(0, 2));
        assert!(c.has_arc(0, 1));
        assert!(!c.has_arc(2, 0));
    }

    #[test]
    fn reduction_removes_transitive_arcs() {
        // Figure 5-style: chain plus induced arcs.
        let g = Digraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3), (0, 2), (0, 3), (1, 3)]);
        let r = g.transitive_reduction();
        assert_eq!(r.arcs(), vec![(0, 1), (1, 2), (2, 3)]);
        // Reduction preserves reachability.
        assert_eq!(r.transitive_closure().arcs(), g.transitive_closure().arcs());
    }

    #[test]
    fn reduction_of_tree_is_identity() {
        let g = Digraph::from_arcs(5, &[(1, 0), (2, 0), (3, 1), (4, 1)]);
        assert_eq!(g.transitive_reduction().arcs(), g.arcs());
    }
}
