//! Semi-trees and transitive semi-trees (Section 3.1).
//!
//! * A **semi-tree** is a digraph with *at most one undirected path between
//!   any pair of nodes* — equivalently, its underlying undirected
//!   multigraph is a forest with no parallel or antiparallel edge pairs.
//!   Every arc of a semi-tree is a **critical arc**.
//! * A **transitive semi-tree** (TST) is a digraph whose transitive
//!   reduction is a semi-tree: a semi-tree plus arbitrarily many
//!   transitively induced arcs.
//!
//! The paper's concurrency-control technique applies exactly to database
//! partitions whose data hierarchy graph is a TST.

use super::digraph::Digraph;

/// Why a digraph failed the semi-tree / TST test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemiTreeViolation {
    /// A directed cycle (node list).
    DirectedCycle(Vec<usize>),
    /// Two nodes connected by more than one undirected path; the pair of
    /// arcs that closed the second path.
    UndirectedCycle {
        /// One endpoint of the edge that closed the cycle.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

/// Union-find over node indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Union; returns false if already in the same component.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Check whether `g` is a semi-tree; `Ok(())` or the violation found.
///
/// Both arcs of an antiparallel pair count as distinct undirected paths
/// between their endpoints, so any antiparallel pair (and any undirected
/// cycle) disqualifies.
pub fn check_semi_tree(g: &Digraph) -> Result<(), SemiTreeViolation> {
    let mut uf = UnionFind::new(g.node_count());
    for (u, v) in g.arcs() {
        if !uf.union(u, v) {
            return Err(SemiTreeViolation::UndirectedCycle { u, v });
        }
    }
    Ok(())
}

/// True iff `g` is a semi-tree.
pub fn is_semi_tree(g: &Digraph) -> bool {
    check_semi_tree(g).is_ok()
}

/// Check whether `g` is a transitive semi-tree. On success returns the
/// transitive reduction (whose arcs are the **critical arcs**).
pub fn check_transitive_semi_tree(g: &Digraph) -> Result<Digraph, SemiTreeViolation> {
    if let Some(cycle) = g.find_cycle() {
        return Err(SemiTreeViolation::DirectedCycle(cycle));
    }
    let r = g.transitive_reduction();
    check_semi_tree(&r)?;
    Ok(r)
}

/// True iff `g` is a transitive semi-tree.
pub fn is_transitive_semi_tree(g: &Digraph) -> bool {
    check_transitive_semi_tree(g).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_semi_tree() {
        let g = Digraph::from_arcs(3, &[(0, 1), (1, 2)]);
        assert!(is_semi_tree(&g));
    }

    #[test]
    fn diamond_is_not_semi_tree() {
        // 0→1→3 and 0→2→3: two undirected paths between 0 and 3.
        let g = Digraph::from_arcs(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        assert!(!is_semi_tree(&g));
        // ... and it is not a TST either (the diamond IS its own
        // reduction).
        assert!(!is_transitive_semi_tree(&g));
    }

    #[test]
    fn antiparallel_pair_rejected() {
        let g = Digraph::from_arcs(2, &[(0, 1), (1, 0)]);
        assert!(!is_semi_tree(&g));
        match check_semi_tree(&g) {
            Err(SemiTreeViolation::UndirectedCycle { .. }) => {}
            other => panic!("expected undirected cycle, got {other:?}"),
        }
    }

    #[test]
    fn semi_tree_allows_mixed_directions() {
        // A "semi" tree: undirected shape is a tree, arc directions free.
        //   0 → 1 ← 2,  3 → 1
        let g = Digraph::from_arcs(4, &[(0, 1), (2, 1), (3, 1)]);
        assert!(is_semi_tree(&g));
        assert!(is_transitive_semi_tree(&g));
    }

    #[test]
    fn figure5_style_tst_accepted() {
        // Critical chain 0→1→2→3 with transitively induced extras.
        let g = Digraph::from_arcs(4, &[(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3)]);
        let r = check_transitive_semi_tree(&g).expect("is a TST");
        assert_eq!(r.arcs(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn directed_cycle_reported() {
        let g = Digraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        match check_transitive_semi_tree(&g) {
            Err(SemiTreeViolation::DirectedCycle(c)) => assert_eq!(c.len(), 3),
            other => panic!("expected directed cycle, got {other:?}"),
        }
    }

    #[test]
    fn branching_tst() {
        // Tree: 1→0, 2→0, 3→1, 4→1 (arcs point lower → higher) plus
        // induced 3→0, 4→0.
        let g = Digraph::from_arcs(5, &[(1, 0), (2, 0), (3, 1), (4, 1), (3, 0), (4, 0)]);
        let r = check_transitive_semi_tree(&g).expect("is a TST");
        assert_eq!(r.arc_count(), 4);
        assert!(r.has_arc(3, 1) && !r.has_arc(3, 0));
    }

    #[test]
    fn forest_tst_with_multiple_components() {
        let g = Digraph::from_arcs(4, &[(0, 1), (2, 3)]);
        assert!(is_transitive_semi_tree(&g));
    }

    #[test]
    fn non_tree_reduction_rejected() {
        // Reduction contains 0→2, 1→2, 0→3, 1→3 (K2,2): undirected cycle.
        let g = Digraph::from_arcs(4, &[(0, 2), (1, 2), (0, 3), (1, 3)]);
        assert!(!is_transitive_semi_tree(&g));
    }
}
