//! Time walls (Section 5.1–5.2): consistent per-segment version bounds
//! for ad-hoc read-only transactions.
//!
//! A time wall `TW(m, s)` is the vector of `E_s^i(m)` over all classes
//! `i`. Theorem 2: a read-only transaction that reads, from every segment
//! `D_i`, the latest version before `E_s^i(m)` observes a consistent
//! database state and induces no dependency-graph cycle.
//!
//! [`TimeWallService`] implements the paper's release protocol
//! (Section 5.2): walls are computed "at certain intervals" and released
//! to all read-only transactions that start before the next wall. The
//! anchor is a lowest-level class (per component, for forest-shaped
//! hierarchies) and the anchor time is the *current* time when the
//! computation first starts; if some `C_late` is not yet computable the
//! service retries the *same* pending wall until enough transactions
//! finish ("if it encounters any C_late function that it cannot compute,
//! it waits until it becomes computable").

use crate::activity::{ActivityFuncs, CLate};
use crate::analysis::Hierarchy;
use mc::sync::RwLock;
use std::sync::Arc;
use txn_model::{ClassId, Timestamp};

/// A released time wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeWall {
    /// Anchor time `m` (one per component; all share the same `m`).
    pub anchor_time: Timestamp,
    /// Anchor class per component (the component's lowest class).
    pub anchors: Vec<ClassId>,
    /// `E_s^i(m)` per class index.
    pub components: Vec<Timestamp>,
    /// Release time `RT(TW)`.
    pub released_at: Timestamp,
}

impl TimeWall {
    /// The wall component for `class`.
    pub fn component(&self, class: ClassId) -> Timestamp {
        self.components[class.index()]
    }

    /// The smallest component (garbage-collection floor for readers
    /// pinned to this wall).
    pub fn floor(&self) -> Timestamp {
        self.components
            .iter()
            .copied()
            .min()
            .unwrap_or(Timestamp::MAX)
    }
}

/// Wall computation in progress (anchor time pinned at first attempt).
#[derive(Debug, Clone, Copy)]
struct Pending {
    anchor_time: Timestamp,
}

/// Computes and publishes time walls.
#[derive(Debug)]
pub struct TimeWallService {
    released: RwLock<Vec<Arc<TimeWall>>>,
    pending: RwLock<Option<Pending>>,
}

impl TimeWallService {
    /// An empty service (no wall released yet).
    pub fn new() -> Self {
        TimeWallService {
            released: RwLock::new(Vec::new()),
            pending: RwLock::new(None),
        }
    }

    /// Attempt to compute and release a wall anchored at (pending `m`, or
    /// `now` when starting fresh). Returns the released wall on success;
    /// `None` when some `C_late` is not yet computable (the pending
    /// anchor time is kept for the retry).
    pub fn try_release(
        &self,
        hierarchy: &Hierarchy,
        funcs: &ActivityFuncs<'_>,
        now: Timestamp,
        release_ts: impl FnOnce() -> Timestamp,
    ) -> Option<Arc<TimeWall>> {
        let m = {
            let mut pending = self.pending.write();
            match *pending {
                Some(p) => p.anchor_time,
                None => {
                    let p = Pending { anchor_time: now };
                    *pending = Some(p);
                    p.anchor_time
                }
            }
        };

        let n = hierarchy.class_count();
        let mut components = vec![Timestamp::MAX; n];
        let mut anchors = Vec::new();
        for comp in hierarchy.paths().components() {
            // Anchor: the component's first lowest-level class.
            let anchor = *comp
                .iter()
                .find(|&&v| hierarchy.paths().reduction().in_neighbors(v).is_empty())
                .expect("every finite DAG component has a minimal node");
            anchors.push(ClassId(anchor as u32));
            for &i in &comp {
                match funcs.e_fn(ClassId(anchor as u32), ClassId(i as u32), m) {
                    CLate::Time(t) => components[i] = t,
                    CLate::NotComputable => return None,
                }
            }
        }

        let wall = Arc::new(TimeWall {
            anchor_time: m,
            anchors,
            components,
            released_at: release_ts(),
        });
        self.released.write().push(Arc::clone(&wall));
        *self.pending.write() = None;
        Some(wall)
    }

    /// The newest wall with `RT(TW) < start` — the wall Protocol C assigns
    /// to a read-only transaction initiating at `start`.
    pub fn latest_released_before(&self, start: Timestamp) -> Option<Arc<TimeWall>> {
        self.released
            .read()
            .iter()
            .rev()
            .find(|w| w.released_at < start)
            .cloned()
    }

    /// The newest released wall, if any.
    pub fn latest(&self) -> Option<Arc<TimeWall>> {
        self.released.read().last().cloned()
    }

    /// The oldest retained released wall, if any. Used as a liveness
    /// fallback for readers that began before the first release: reading
    /// below *any* single wall is consistent (Theorem 2 does not mention
    /// the reader's initiation time), so a reader with no wall released
    /// before its start takes the earliest one released after it.
    pub fn earliest(&self) -> Option<Arc<TimeWall>> {
        self.released.read().first().cloned()
    }

    /// Number of released walls.
    pub fn released_count(&self) -> usize {
        self.released.read().len()
    }

    /// Snapshot of all retained released walls (experiment E9 measures
    /// anchor-to-release lag across them).
    pub fn released_all(&self) -> Vec<Arc<TimeWall>> {
        self.released.read().clone()
    }

    /// The anchor time of an in-progress wall computation, if any. The
    /// garbage collector must not reclaim state this computation still
    /// reads.
    pub fn pending_anchor(&self) -> Option<Timestamp> {
        self.pending.read().map(|p| p.anchor_time)
    }

    /// Drop all but the newest `keep` released walls (old walls are only
    /// needed while a read-only transaction pinned to them is running;
    /// the scheduler accounts for those via its GC floor).
    pub fn retire_old(&self, keep: usize) {
        let mut rel = self.released.write();
        let len = rel.len();
        if len > keep {
            rel.drain(..len - keep);
        }
    }
}

impl Default for TimeWallService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityRegistry;
    use crate::analysis::AccessSpec;
    use txn_model::{LogicalClock, SegmentId};

    fn ts(t: u64) -> Timestamp {
        Timestamp(t)
    }

    /// Tree: 3 → 1 → 0, 4 → 1, 2 → 0.
    fn tree() -> Hierarchy {
        let s = SegmentId;
        Hierarchy::build(
            5,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
                AccessSpec::new("c3", vec![s(3)], vec![s(1)]),
                AccessSpec::new("c4", vec![s(4)], vec![s(1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn wall_release_when_idle() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        let f = ActivityFuncs::new(&h, &r);
        let clock = LogicalClock::new();
        clock.advance_past(ts(50));
        let svc = TimeWallService::new();
        let wall = svc
            .try_release(&h, &f, ts(50), || clock.tick())
            .expect("idle system: all E computable");
        // Idle: every component equals the anchor time.
        assert!(wall.components.iter().all(|&c| c == ts(50)));
        assert_eq!(wall.floor(), ts(50));
        assert_eq!(svc.released_count(), 1);
    }

    #[test]
    fn pending_anchor_is_retried_not_refreshed() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        let f = ActivityFuncs::new(&h, &r);
        let clock = LogicalClock::new();
        clock.advance_past(ts(10));
        // A running txn in the apex class 0 blocks the downward E steps.
        r.begin(ClassId(0), ts(5));
        let svc = TimeWallService::new();
        assert!(svc.try_release(&h, &f, ts(10), || clock.tick()).is_none());
        // Commit it; retry must use the ORIGINAL anchor time 10.
        r.commit(ClassId(0), ts(5), ts(20));
        clock.advance_past(ts(30));
        let wall = svc
            .try_release(&h, &f, ts(30), || clock.tick())
            .expect("computable now");
        assert_eq!(wall.anchor_time, ts(10));
    }

    #[test]
    fn latest_released_before_selects_correct_wall() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        let f = ActivityFuncs::new(&h, &r);
        let clock = LogicalClock::new();
        let svc = TimeWallService::new();
        clock.advance_past(ts(10));
        let w1 = svc.try_release(&h, &f, ts(10), || clock.tick()).unwrap();
        clock.advance_past(ts(20));
        let w2 = svc.try_release(&h, &f, ts(20), || clock.tick()).unwrap();
        assert!(svc.latest_released_before(w1.released_at).is_none());
        assert_eq!(
            svc.latest_released_before(w1.released_at.succ())
                .unwrap()
                .anchor_time,
            w1.anchor_time
        );
        assert_eq!(
            svc.latest_released_before(ts(100)).unwrap().anchor_time,
            w2.anchor_time
        );
        assert_eq!(svc.latest().unwrap().anchor_time, w2.anchor_time);
    }

    #[test]
    fn retire_keeps_newest() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        let f = ActivityFuncs::new(&h, &r);
        let clock = LogicalClock::new();
        let svc = TimeWallService::new();
        for t in [10u64, 20, 30] {
            clock.advance_past(ts(t));
            svc.try_release(&h, &f, ts(t), || clock.tick()).unwrap();
        }
        svc.retire_old(1);
        assert_eq!(svc.released_count(), 1);
        assert_eq!(svc.latest().unwrap().anchor_time, ts(30));
    }

    #[test]
    fn pending_anchor_visible_until_release() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        let f = ActivityFuncs::new(&h, &r);
        let clock = LogicalClock::new();
        clock.advance_past(ts(10));
        r.begin(ClassId(0), ts(5)); // blocks C_late
        let svc = TimeWallService::new();
        assert_eq!(svc.pending_anchor(), None);
        assert!(svc.try_release(&h, &f, ts(10), || clock.tick()).is_none());
        assert_eq!(svc.pending_anchor(), Some(ts(10)));
        r.commit(ClassId(0), ts(5), ts(20));
        clock.advance_past(ts(30));
        assert!(svc.try_release(&h, &f, ts(30), || clock.tick()).is_some());
        assert_eq!(svc.pending_anchor(), None);
    }

    #[test]
    fn forest_hierarchy_gets_per_component_anchors() {
        let s = SegmentId;
        // Two components: 1 → 0 and 3 → 2.
        let h = Hierarchy::build(
            4,
            &[
                AccessSpec::new("a", vec![s(0)], vec![]),
                AccessSpec::new("b", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c", vec![s(2)], vec![]),
                AccessSpec::new("d", vec![s(3)], vec![s(2)]),
            ],
        )
        .unwrap();
        let r = ActivityRegistry::new(4);
        let f = ActivityFuncs::new(&h, &r);
        let clock = LogicalClock::new();
        clock.advance_past(ts(10));
        let svc = TimeWallService::new();
        let wall = svc.try_release(&h, &f, ts(10), || clock.tick()).unwrap();
        assert_eq!(wall.anchors.len(), 2);
        assert!(wall.components.iter().all(|&c| c == ts(10)));
    }
}
