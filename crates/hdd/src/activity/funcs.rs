//! The activity link function `A`, its inverse `B`, and the extended
//! activity link function `E` (Sections 4.1 and 5.1).
//!
//! With `CP_i^j = T_i → T_k → ... → T_j` (classes above `i`, up to and
//! including `j`):
//!
//! * `A_i^j(m)` composes `I_old` **upward**: `I_j(... I_k(m))` — "the
//!   initiation time of successively the oldest active transaction"
//!   along the critical path. Always computable for `m ≤ now`.
//! * `B_j^i(m)` composes `C_late` **downward** over the same classes:
//!   `C_k(... C_j(m))`. It is `A`'s mirror: Property 2.1
//!   (`A_i^j(B_j^i(m)) ≥ m`) and Property 2.2 (`A_i^j(B_j^i(m) − ε) < m`)
//!   follow by telescoping the per-class inequalities
//!   `I_c(C_c(x)) ≥ x` and `I_c(C_c(x) − ε) < x`.
//! * `E_i^j(m)` walks the *undirected* critical path: an **upward** step
//!   into class `c` applies `I_c_old`; a **downward** step out of class
//!   `c` applies `C_c_late` — in both cases the function of the *higher*
//!   class of the arc. `E` inherits `C_late`'s computability caveat.
//!
//! `B` and `E` can be temporarily not computable (some transaction
//! started at or before the argument is still running); callers retry.

use super::registry::{ActivityRegistry, CLate};
use crate::analysis::Hierarchy;
use txn_model::{ClassId, Timestamp};

/// Evaluator for `A`, `B` and `E` over a hierarchy plus live activity.
#[derive(Debug, Clone, Copy)]
pub struct ActivityFuncs<'a> {
    hierarchy: &'a Hierarchy,
    registry: &'a ActivityRegistry,
}

impl<'a> ActivityFuncs<'a> {
    /// Bind a hierarchy and a registry.
    pub fn new(hierarchy: &'a Hierarchy, registry: &'a ActivityRegistry) -> Self {
        debug_assert_eq!(hierarchy.class_count(), registry.class_count());
        ActivityFuncs {
            hierarchy,
            registry,
        }
    }

    /// `A_i^j(m)`: fold `I_old` up the critical path from `i` to `j`,
    /// excluding `i`, including `j`. Returns `m` itself when `i == j`
    /// (the natural identity extension used by `⇒` case analysis).
    ///
    /// # Panics
    /// If no critical path `CP_i^j` exists.
    pub fn a_fn(&self, i: ClassId, j: ClassId, m: Timestamp) -> Timestamp {
        let hops = self
            .hierarchy
            .paths()
            .a_hops(i.index(), j.index())
            .unwrap_or_else(|| panic!("A_{i}^{j} undefined: no critical path"));
        hops.iter()
            .fold(m, |cur, &c| self.registry.i_old(ClassId(c), cur))
    }

    /// [`a_fn`](Self::a_fn) plus the total activity-registry intervals
    /// examined across every `I_old` hop — the per-evaluation scan
    /// length recorded into the obs registry-scan histogram.
    pub fn a_fn_counted(&self, i: ClassId, j: ClassId, m: Timestamp) -> (Timestamp, u64) {
        let hops = self
            .hierarchy
            .paths()
            .a_hops(i.index(), j.index())
            .unwrap_or_else(|| panic!("A_{i}^{j} undefined: no critical path"));
        hops.iter().fold((m, 0), |(cur, scanned), &c| {
            let (t, s) = self.registry.i_old_counted(ClassId(c), cur);
            (t, scanned + s)
        })
    }

    /// `A` anchored at a *fictitious class below `c`* (Section 5.0: a
    /// read-only transaction whose read segments lie on one critical
    /// path obeys the protocol of a class right below the lowest class of
    /// that path). Folds `I_old` over the path from `c` to `j`
    /// **including `c` itself**.
    pub fn a_fn_from_below(&self, c: ClassId, j: ClassId, m: Timestamp) -> Timestamp {
        let hops = self
            .hierarchy
            .paths()
            .a_hops_inclusive(c.index(), j.index())
            .unwrap_or_else(|| panic!("A-from-below undefined: no critical path {c} → {j}"));
        hops.iter()
            .fold(m, |cur, &cl| self.registry.i_old(ClassId(cl), cur))
    }

    /// [`a_fn_from_below`](Self::a_fn_from_below) plus the intervals
    /// examined (see [`a_fn_counted`](Self::a_fn_counted)).
    pub fn a_fn_from_below_counted(
        &self,
        c: ClassId,
        j: ClassId,
        m: Timestamp,
    ) -> (Timestamp, u64) {
        let hops = self
            .hierarchy
            .paths()
            .a_hops_inclusive(c.index(), j.index())
            .unwrap_or_else(|| panic!("A-from-below undefined: no critical path {c} → {j}"));
        hops.iter().fold((m, 0), |(cur, scanned), &cl| {
            let (t, s) = self.registry.i_old_counted(ClassId(cl), cur);
            (t, scanned + s)
        })
    }

    /// `B_j^i(m)`: fold `C_late` down the critical path from `j` to `i`,
    /// including `j`, excluding `i`. Identity when `i == j`.
    ///
    /// # Panics
    /// If no critical path `CP_i^j` exists.
    pub fn b_fn(&self, j: ClassId, i: ClassId, m: Timestamp) -> CLate {
        let hops = self
            .hierarchy
            .paths()
            .a_hops(i.index(), j.index())
            .unwrap_or_else(|| panic!("B_{j}^{i} undefined: no critical path"));
        let mut cur = m;
        for &c in hops.iter().rev() {
            match self.registry.c_late(ClassId(c), cur) {
                CLate::Time(t) => cur = t,
                CLate::NotComputable => return CLate::NotComputable,
            }
        }
        CLate::Time(cur)
    }

    /// `E_i^j(m)`: walk `UCP_i^j`; each upward step into class `c`
    /// applies `I_c_old`, each downward step out of class `c` applies
    /// `C_c_late`. Identity when `i == j`. `None`-style
    /// [`CLate::NotComputable`] propagates.
    ///
    /// # Panics
    /// If `i` and `j` are in different components (no UCP).
    pub fn e_fn(&self, i: ClassId, j: ClassId, m: Timestamp) -> CLate {
        let steps = self
            .hierarchy
            .paths()
            .e_steps(i.index(), j.index())
            .unwrap_or_else(|| panic!("E_{i}^{j} undefined: no UCP (different components)"));
        let mut cur = m;
        for &(is_up, c) in steps {
            if is_up {
                cur = self.registry.i_old(ClassId(c), cur);
            } else {
                match self.registry.c_late(ClassId(c), cur) {
                    CLate::Time(t) => cur = t,
                    CLate::NotComputable => return CLate::NotComputable,
                }
            }
        }
        CLate::Time(cur)
    }

    /// The hierarchy this evaluator is bound to.
    pub fn hierarchy(&self) -> &'a Hierarchy {
        self.hierarchy
    }

    /// The registry this evaluator is bound to.
    pub fn registry(&self) -> &'a ActivityRegistry {
        self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AccessSpec;
    use txn_model::SegmentId;

    fn ts(t: u64) -> Timestamp {
        Timestamp(t)
    }

    /// Chain hierarchy 2 → 1 → 0 (class 2 lowest, class 0 highest):
    /// the paper's inventory shape.
    fn chain() -> Hierarchy {
        let s = SegmentId;
        Hierarchy::build(
            3,
            &[
                AccessSpec::new("t1", vec![s(0)], vec![]),
                AccessSpec::new("t2", vec![s(1)], vec![s(0)]),
                AccessSpec::new("t3", vec![s(2)], vec![s(0), s(1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn a_fn_composes_i_old_up_the_path() {
        let h = chain();
        let r = ActivityRegistry::new(3);
        // Class 1 has a txn active since 4; class 0 active since 6.
        r.begin(ClassId(1), ts(4));
        r.begin(ClassId(0), ts(6));
        let f = ActivityFuncs::new(&h, &r);
        // A_2^1(10) = I_1_old(10) = 4.
        assert_eq!(f.a_fn(ClassId(2), ClassId(1), ts(10)), ts(4));
        // A_2^0(10) = I_0_old(I_1_old(10)) = I_0_old(4) = 4
        // (class 0's txn started at 6 > 4, so not active at 4).
        assert_eq!(f.a_fn(ClassId(2), ClassId(0), ts(10)), ts(4));
        // With nothing active, A is the identity.
        r.commit(ClassId(1), ts(4), ts(7));
        r.commit(ClassId(0), ts(6), ts(8));
        assert_eq!(f.a_fn(ClassId(2), ClassId(0), ts(20)), ts(20));
        // i == j is the identity.
        assert_eq!(f.a_fn(ClassId(2), ClassId(2), ts(9)), ts(9));
    }

    #[test]
    fn a_fn_figure6_walkthrough() {
        // Figure 6: CP = T_i → T_k → T_j; A_i^j(m) = I_j_old(I_k_old(m)).
        let h = chain(); // i=2, k=1, j=0
        let r = ActivityRegistry::new(3);
        r.begin(ClassId(1), ts(10)); // oldest active in T_k at m=30
        r.begin(ClassId(1), ts(20));
        r.begin(ClassId(0), ts(5)); // oldest active in T_j at 10
        r.begin(ClassId(0), ts(8));
        let f = ActivityFuncs::new(&h, &r);
        // I_k_old(30) = 10; I_j_old(10) = 5.
        assert_eq!(f.a_fn(ClassId(2), ClassId(0), ts(30)), ts(5));
    }

    #[test]
    fn a_from_below_includes_the_base_class() {
        let h = chain();
        let r = ActivityRegistry::new(3);
        r.begin(ClassId(2), ts(3));
        let f = ActivityFuncs::new(&h, &r);
        // Fictitious class below 2: I_2_old applies first.
        assert_eq!(f.a_fn_from_below(ClassId(2), ClassId(2), ts(10)), ts(3));
        // Plain A_2^2 would be the identity.
        assert_eq!(f.a_fn(ClassId(2), ClassId(2), ts(10)), ts(10));
    }

    #[test]
    fn b_fn_mirrors_a_fn() {
        let h = chain();
        let r = ActivityRegistry::new(3);
        // One committed interval per class.
        r.begin(ClassId(0), ts(2));
        r.commit(ClassId(0), ts(2), ts(12));
        r.begin(ClassId(1), ts(3));
        r.commit(ClassId(1), ts(3), ts(15));
        let f = ActivityFuncs::new(&h, &r);
        // B_0^2(5) = C_1_late(C_0_late(5)) = C_1_late(12) = 15.
        assert_eq!(f.b_fn(ClassId(0), ClassId(2), ts(5)), CLate::Time(ts(15)));
        // Not computable while a relevant txn runs.
        r.begin(ClassId(0), ts(20));
        assert_eq!(f.b_fn(ClassId(0), ClassId(2), ts(21)), CLate::NotComputable);
        // ... but computable for arguments before it started.
        assert_eq!(f.b_fn(ClassId(0), ClassId(2), ts(19)), CLate::Time(ts(19)));
    }

    #[test]
    fn property_2_1_and_2_2_on_a_scenario() {
        // A(B(m)) >= m and A(B(m) - ε) < m.
        let h = chain();
        let r = ActivityRegistry::new(3);
        r.begin(ClassId(0), ts(4));
        r.commit(ClassId(0), ts(4), ts(11));
        r.begin(ClassId(1), ts(6));
        r.commit(ClassId(1), ts(6), ts(14));
        let f = ActivityFuncs::new(&h, &r);
        for m in 1..20u64 {
            let m = ts(m);
            if let CLate::Time(b) = f.b_fn(ClassId(0), ClassId(2), m) {
                assert!(
                    f.a_fn(ClassId(2), ClassId(0), b) >= m,
                    "Property 2.1 violated at m={m}"
                );
                assert!(
                    f.a_fn(ClassId(2), ClassId(0), b.pred()) < m || b == Timestamp::ZERO,
                    "Property 2.2 violated at m={m}"
                );
            }
        }
    }

    /// Branching hierarchy for E: 3 → 1 → 0 ← 2, 4 → 1.
    fn tree() -> Hierarchy {
        let s = SegmentId;
        Hierarchy::build(
            5,
            &[
                AccessSpec::new("top", vec![s(0)], vec![]),
                AccessSpec::new("mid", vec![s(1)], vec![s(0)]),
                AccessSpec::new("right", vec![s(2)], vec![s(0)]),
                AccessSpec::new("leaf3", vec![s(3)], vec![s(1), s(0)]),
                AccessSpec::new("leaf4", vec![s(4)], vec![s(1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn e_fn_identity_and_pure_up() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        r.begin(ClassId(1), ts(5));
        let f = ActivityFuncs::new(&h, &r);
        assert_eq!(f.e_fn(ClassId(3), ClassId(3), ts(9)), CLate::Time(ts(9)));
        // Pure-up UCP 3 → 1: E = I_1_old = A_3^1.
        assert_eq!(f.e_fn(ClassId(3), ClassId(1), ts(9)), CLate::Time(ts(5)));
        assert_eq!(
            f.e_fn(ClassId(3), ClassId(1), ts(9)),
            CLate::Time(f.a_fn(ClassId(3), ClassId(1), ts(9)))
        );
    }

    #[test]
    fn e_fn_peak_path_applies_c_late_of_the_apex() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        // Apex class 1: interval (5, 12) committed.
        r.begin(ClassId(1), ts(5));
        r.commit(ClassId(1), ts(5), ts(12));
        let f = ActivityFuncs::new(&h, &r);
        // UCP 3 → 1 → 4: up into 1 then down out of 1.
        // E = C_1_late(I_1_old(m)); at m=9: I_1_old(9) = 5; C_1_late(5)=5
        // (nothing active strictly before 5).
        assert_eq!(f.e_fn(ClassId(3), ClassId(4), ts(9)), CLate::Time(ts(5)));
        // At m=20 (after commit): I_1_old(20) = 20, C_1_late(20) = 20.
        assert_eq!(f.e_fn(ClassId(3), ClassId(4), ts(20)), CLate::Time(ts(20)));
    }

    #[test]
    fn e_fn_down_path_not_computable_while_running() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        r.begin(ClassId(0), ts(4)); // running in the top class
        let f = ActivityFuncs::new(&h, &r);
        // UCP 3 → 1 → 0 → 2 includes a downward step out of 0.
        assert_eq!(f.e_fn(ClassId(3), ClassId(2), ts(9)), CLate::NotComputable);
        r.commit(ClassId(0), ts(4), ts(10));
        assert!(matches!(
            f.e_fn(ClassId(3), ClassId(2), ts(9)),
            CLate::Time(_)
        ));
    }

    #[test]
    #[should_panic(expected = "no critical path")]
    fn a_fn_panics_off_path() {
        let h = tree();
        let r = ActivityRegistry::new(5);
        let f = ActivityFuncs::new(&h, &r);
        // 3 and 4 are siblings: no CP.
        f.a_fn(ClassId(3), ClassId(4), ts(5));
    }
}
