//! Per-class transaction activity history: the inputs to `I_old` and
//! `C_late`.
//!
//! The activity-link machinery needs, for any past time `m`, the set of
//! transactions of a class *active at m* — `I(t) < m < C(t)`, where an
//! aborted transaction counts as active until its abort ("uncommitted and
//! un-aborted"). [`ClassActivity`] keeps the `(start, end)` intervals of a
//! class's transactions; [`ActivityRegistry`] is the per-class array.
//!
//! Evaluation at past times is well-defined because queries are only ever
//! issued with `m ≤ now`: a transaction still running at evaluation time
//! has `C(t) > now ≥ m`, so its activity at `m` is already determined.
//!
//! # Hot-path structure
//!
//! Initiation timestamps come from a monotonic clock, so under
//! [`ActivityRegistry::begin_with`] (which draws the timestamp *inside*
//! the class lock) inserts are pure appends — no binary search, no
//! memmove. Drawing the timestamp under the lock is also a correctness
//! requirement, not just a fast path: it makes `I_old(m)` immutable for
//! every `m ≤ now` (no transaction can later surface with a start below
//! an already-evaluated bound), which is what Protocol A's bound proof
//! assumes. A begin whose timestamp was drawn outside the lock could be
//! observed by a concurrent bound evaluation *after* the tick but
//! *before* the insert, yielding a bound above the newcomer's start —
//! and with it, reads that straddle another transaction's commit.
//!
//! Queries exploit a lazily-advanced **settled cursor**: the longest
//! prefix of (start-sorted) intervals in which every transaction has
//! ended, together with the maximum end time inside that prefix. For a
//! query at `m` at or above that maximum, no settled interval can still
//! be active at `m` (its end is ≤ the maximum ≤ `m`), so the scan starts
//! at the cursor and touches only the *active window* — O(active), not
//! O(total history). The instrumented scan counter keeps this claim
//! testable.
//!
//! History is pruned by garbage collection: an interval that ended before
//! the GC watermark can never again satisfy `end > m` for future queries.

use mc::sync::Mutex;
use std::cell::Cell;
use txn_model::{ClassId, Timestamp};

/// Outcome of a `C_late` evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CLate {
    /// The latest commit time of transactions active at `m` (or `m` when
    /// none were active).
    Time(Timestamp),
    /// Some transaction started at or before `m` is still running —
    /// `C_late(m)` is not yet computable (Section 5.1); retry later.
    NotComputable,
}

/// One transaction's activity interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    start: Timestamp,
    /// `None` while running; commit or abort time once ended.
    end: Option<Timestamp>,
    /// True when ended by commit (aborts contribute no commit time to
    /// `C_late` but bound activity exactly like commits).
    committed: bool,
}

/// Activity history of a single transaction class.
#[derive(Debug, Default)]
pub struct ClassActivity {
    /// Sorted ascending by `start` (starts are unique clock ticks).
    entries: Vec<Interval>,
    /// Length of the longest all-ended prefix of `entries`.
    settled: usize,
    /// Maximum end time within the settled prefix (`ZERO` when empty).
    settled_max_end: Timestamp,
    /// Number of entries still running (`end == None`).
    running: usize,
    /// Intervals examined by `i_old`/`c_late` since construction
    /// (instrumentation; `Cell` is fine — the struct lives in a mutex).
    scans: Cell<u64>,
}

impl ClassActivity {
    fn position(&self, start: Timestamp) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&start, |e| e.start)
    }

    /// Advance the settled cursor over every ended entry it now covers.
    fn advance_settled(&mut self) {
        while let Some(e) = self.entries.get(self.settled) {
            match e.end {
                Some(end) => {
                    if end > self.settled_max_end {
                        self.settled_max_end = end;
                    }
                    self.settled += 1;
                }
                None => break,
            }
        }
    }

    /// Recompute all cursors from scratch (cold paths: prune/absorb).
    fn rebuild_cursors(&mut self) {
        self.settled = 0;
        self.settled_max_end = Timestamp::ZERO;
        self.running = self.entries.iter().filter(|e| e.end.is_none()).count();
        self.advance_settled();
    }

    /// First entry index a query at `m` must examine: entries below the
    /// settled cursor have all ended at or before `settled_max_end`, so
    /// for `m ≥ settled_max_end` none can satisfy `end > m`.
    fn scan_start(&self, m: Timestamp) -> usize {
        if m >= self.settled_max_end {
            self.settled
        } else {
            0
        }
    }

    /// Record a transaction beginning at `start`.
    pub fn begin(&mut self, start: Timestamp) {
        self.running += 1;
        // Monotonic-clock fast path: strictly newer than everything seen.
        if self.entries.last().is_none_or(|l| start > l.start) {
            self.entries.push(Interval {
                start,
                end: None,
                committed: false,
            });
            return;
        }
        // Out-of-order insert (absorbed histories, tests).
        match self.position(start) {
            Ok(_) => panic!("duplicate initiation timestamp {start}"),
            Err(i) => {
                self.entries.insert(
                    i,
                    Interval {
                        start,
                        end: None,
                        committed: false,
                    },
                );
                if i < self.settled {
                    // A running entry appeared inside the settled prefix.
                    self.rebuild_cursors();
                }
            }
        }
    }

    /// Record the end (commit or abort) of the transaction that began at
    /// `start`.
    pub fn end(&mut self, start: Timestamp, end: Timestamp, committed: bool) {
        if let Ok(i) = self.position(start) {
            debug_assert!(self.entries[i].end.is_none(), "transaction ended twice");
            self.entries[i].end = Some(end);
            self.entries[i].committed = committed;
            self.running -= 1;
            if i == self.settled {
                self.advance_settled();
            }
        } else {
            debug_assert!(false, "ending unknown transaction {start}");
        }
    }

    /// `I_old(m)`: the initiation time of the oldest transaction active at
    /// `m`, or `m` itself when none is active.
    pub fn i_old(&self, m: Timestamp) -> Timestamp {
        self.i_old_counted(m).0
    }

    /// [`i_old`](Self::i_old) plus the number of intervals the
    /// evaluation examined — the per-call scan length behind the
    /// O(active) claim, fed to the obs registry-scan histogram.
    pub fn i_old_counted(&self, m: Timestamp) -> (Timestamp, u64) {
        let mut scanned = 0u64;
        for e in &self.entries[self.scan_start(m)..] {
            scanned += 1;
            if e.start >= m {
                break; // sorted: no further entry can have start < m
            }
            if e.end.is_none_or(|end| end > m) {
                self.scans.set(self.scans.get() + scanned);
                return (e.start, scanned);
            }
        }
        self.scans.set(self.scans.get() + scanned);
        (m, scanned)
    }

    /// `C_late(m)`: the latest *end* time (commit or abort) of
    /// transactions active at `m` (`m` when none), or
    /// [`CLate::NotComputable`] while any transaction started at or
    /// before `m` is still running.
    ///
    /// The paper defines `C_late` over commit times; aborts must bound it
    /// too, because the inverse-pairing `I_old(C_late(x)) ≥ x` (the heart
    /// of Properties 2.1/2.2) quantifies over everything `I_old` counts
    /// as active — and an aborted transaction is active until its abort.
    /// Using the abort time is safe: it only pushes the wall later, past
    /// the point where the (version-less) aborted transaction is gone.
    pub fn c_late(&self, m: Timestamp) -> CLate {
        let mut max_end = m;
        let mut scanned = 0u64;
        for e in &self.entries[self.scan_start(m)..] {
            scanned += 1;
            if e.start > m {
                break;
            }
            match e.end {
                None => {
                    self.scans.set(self.scans.get() + scanned);
                    return CLate::NotComputable;
                }
                Some(end) => {
                    if e.start < m && end > m && end > max_end {
                        max_end = end;
                    }
                }
            }
        }
        self.scans.set(self.scans.get() + scanned);
        CLate::Time(max_end)
    }

    /// The initiation time of the oldest transaction still running, if
    /// any (GC watermark input).
    pub fn oldest_running(&self) -> Option<Timestamp> {
        if self.running == 0 {
            return None;
        }
        self.entries[self.settled..]
            .iter()
            .find(|e| e.end.is_none())
            .map(|e| e.start)
    }

    /// Drop intervals that ended before `wm`; they can never satisfy
    /// `end > m` for queries with `m ≥ wm`. Returns entries dropped.
    pub fn prune_ended_before(&mut self, wm: Timestamp) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.end.is_none_or(|end| end >= wm));
        let dropped = before - self.entries.len();
        if dropped > 0 {
            self.rebuild_cursors();
        }
        dropped
    }

    /// Number of retained intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no intervals are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True while any transaction of the class is running.
    pub fn has_running(&self) -> bool {
        self.running > 0
    }

    /// Intervals examined by `i_old`/`c_late` since construction.
    pub fn scan_count(&self) -> u64 {
        self.scans.get()
    }

    /// Live shape of this class's history (gauge-board sampling).
    pub fn stats(&self) -> ClassStats {
        ClassStats {
            intervals: self.entries.len(),
            settled: self.settled,
            running: self.running,
        }
    }

    /// Export all intervals as `(start, end, committed)` tuples
    /// (dynamic-restructuring registry hand-off).
    pub fn export(&self) -> Vec<(Timestamp, Option<Timestamp>, bool)> {
        self.entries
            .iter()
            .map(|e| (e.start, e.end, e.committed))
            .collect()
    }

    /// Absorb exported intervals (keeps the start-sorted invariant; used
    /// when classes are merged, where histories of several old classes
    /// union into one).
    pub fn absorb(&mut self, intervals: &[(Timestamp, Option<Timestamp>, bool)]) {
        for &(start, end, committed) in intervals {
            match self.position(start) {
                Ok(_) => {} // already present (idempotent hand-off)
                Err(i) => self.entries.insert(
                    i,
                    Interval {
                        start,
                        end,
                        committed,
                    },
                ),
            }
        }
        self.rebuild_cursors();
    }
}

/// A point-in-time view of one class's activity history shape, sampled
/// for the gauge board: interval and running counts plus the settled
/// cursor, whose lag ([`ClassStats::settled_lag`]) is the leading
/// indicator of `I_old`/`C_late` scan cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Intervals currently retained.
    pub intervals: usize,
    /// Length of the settled (all-ended) prefix.
    pub settled: usize,
    /// Entries still running (`end == None`).
    pub running: usize,
}

impl ClassStats {
    /// Intervals not yet behind the settled cursor — the portion a
    /// bound evaluation may still have to scan.
    pub fn settled_lag(&self) -> usize {
        self.intervals.saturating_sub(self.settled)
    }
}

/// Activity histories for every transaction class.
#[derive(Debug)]
pub struct ActivityRegistry {
    classes: Vec<Mutex<ClassActivity>>,
}

impl ActivityRegistry {
    /// A registry for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        ActivityRegistry {
            classes: (0..n_classes)
                .map(|_| Mutex::new(ClassActivity::default()))
                .collect(),
        }
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Record a begin in `class`.
    pub fn begin(&self, class: ClassId, start: Timestamp) {
        self.classes[class.index()].lock().begin(start);
    }

    /// Draw an initiation timestamp from `tick` **while holding the class
    /// lock**, record the begin, and return the timestamp.
    ///
    /// This is the only begin entry point safe under concurrency: any
    /// bound evaluation (`i_old`) that could observe a time at or above
    /// the new start is serialized after the insert by the class lock, so
    /// `I_old(m)` stays immutable for `m ≤ now`. It also guarantees
    /// per-class monotone starts, making the insert a pure append.
    pub fn begin_with(&self, class: ClassId, tick: impl FnOnce() -> Timestamp) -> Timestamp {
        let mut c = self.classes[class.index()].lock();
        let start = tick();
        c.begin(start);
        start
    }

    /// Record a commit in `class`.
    pub fn commit(&self, class: ClassId, start: Timestamp, commit_ts: Timestamp) {
        self.classes[class.index()]
            .lock()
            .end(start, commit_ts, true);
    }

    /// Record an abort in `class`.
    pub fn abort(&self, class: ClassId, start: Timestamp, abort_ts: Timestamp) {
        self.classes[class.index()]
            .lock()
            .end(start, abort_ts, false);
    }

    /// Draw a termination timestamp from `tick` **while holding the
    /// class lock**, record the end, and return the timestamp.
    ///
    /// The end-side twin of [`begin_with`](Self::begin_with), and just as
    /// load-bearing: if the end timestamp is drawn *outside* the lock,
    /// there is a window where a transaction has terminated (its end
    /// timestamp exists, possibly below some `m`) but the registry still
    /// reports it active — so `I_old(m)` evaluates low now and high
    /// later, and two readers bounding off the *same* `m` pick versions
    /// in incompatible orders (a real dependency cycle at 8 workers).
    /// Ticking under the lock guarantees every entry an evaluator counts
    /// as "running, hence active at `m`" really does end at some
    /// `e > m`, making `I_old`/`C_late` exact functions of `m`.
    pub fn end_with(
        &self,
        class: ClassId,
        start: Timestamp,
        committed: bool,
        tick: impl FnOnce() -> Timestamp,
    ) -> Timestamp {
        let mut c = self.classes[class.index()].lock();
        let end = tick();
        c.end(start, end, committed);
        end
    }

    /// `I_old` of `class` at `m`.
    pub fn i_old(&self, class: ClassId, m: Timestamp) -> Timestamp {
        self.classes[class.index()].lock().i_old(m)
    }

    /// `I_old` of `class` at `m`, plus the intervals examined.
    pub fn i_old_counted(&self, class: ClassId, m: Timestamp) -> (Timestamp, u64) {
        self.classes[class.index()].lock().i_old_counted(m)
    }

    /// `C_late` of `class` at `m`.
    pub fn c_late(&self, class: ClassId, m: Timestamp) -> CLate {
        self.classes[class.index()].lock().c_late(m)
    }

    /// The globally oldest running transaction's start, if any.
    pub fn oldest_running(&self) -> Option<Timestamp> {
        self.classes
            .iter()
            .filter_map(|c| c.lock().oldest_running())
            .min()
    }

    /// Prune all classes' histories; returns intervals dropped.
    pub fn prune_ended_before(&self, wm: Timestamp) -> usize {
        self.classes
            .iter()
            .map(|c| c.lock().prune_ended_before(wm))
            .sum()
    }

    /// Total retained intervals (diagnostics).
    pub fn interval_count(&self) -> usize {
        self.classes.iter().map(|c| c.lock().len()).sum()
    }

    /// Total intervals examined by `i_old`/`c_late` across all classes
    /// since construction (instrumentation for the O(active) claim).
    pub fn scan_count(&self) -> u64 {
        self.classes.iter().map(|c| c.lock().scan_count()).sum()
    }

    /// Live shape of `class`'s history (one brief lock acquisition; the
    /// gauge-board refresh samples every class each maintenance tick).
    pub fn class_stats(&self, class: ClassId) -> ClassStats {
        self.classes[class.index()].lock().stats()
    }

    /// True while any transaction of `class` is running.
    pub fn class_has_running(&self, class: ClassId) -> bool {
        self.classes[class.index()].lock().has_running()
    }

    /// Export one class's intervals.
    pub fn export_class(&self, class: ClassId) -> Vec<(Timestamp, Option<Timestamp>, bool)> {
        self.classes[class.index()].lock().export()
    }

    /// Absorb intervals into `class`.
    pub fn absorb_class(&self, class: ClassId, intervals: &[(Timestamp, Option<Timestamp>, bool)]) {
        self.classes[class.index()].lock().absorb(intervals);
    }

    /// Record the end of a transaction in `class` without requiring a
    /// prior `begin` in this registry (mirroring ends across epochs in
    /// dynamic restructuring). Idempotent: completes a running copied
    /// interval, inserts a completed one if absent, and leaves
    /// already-ended intervals alone.
    pub fn mirror_end(&self, class: ClassId, start: Timestamp, end: Timestamp, committed: bool) {
        let mut c = self.classes[class.index()].lock();
        match c.export().iter().find(|&&(s, _, _)| s == start) {
            Some(&(_, None, _)) => c.end(start, end, committed),
            Some(_) => {} // already ended
            None => c.absorb(&[(start, Some(end), committed)]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_stats_track_running_and_settled_lag() {
        let r = ActivityRegistry::new(2);
        let c = ClassId(0);
        r.begin(c, Timestamp(1));
        r.begin(c, Timestamp(2));
        let s = r.class_stats(c);
        assert_eq!(s.intervals, 2);
        assert_eq!(s.running, 2);
        assert_eq!(s.settled, 0);
        assert_eq!(s.settled_lag(), 2);
        r.commit(c, Timestamp(1), Timestamp(3));
        r.commit(c, Timestamp(2), Timestamp(4));
        let s = r.class_stats(c);
        assert_eq!(s.running, 0);
        assert_eq!(s.settled, 2, "cursor advances over ended prefix");
        assert_eq!(s.settled_lag(), 0);
        assert_eq!(r.class_stats(ClassId(1)), ClassStats::default());
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp(t)
    }

    #[test]
    fn i_old_picks_oldest_active() {
        let mut a = ClassActivity::default();
        a.begin(ts(5));
        a.begin(ts(10));
        a.end(ts(5), ts(8), true);
        // At m=9: t@5 ended at 8 (not active), t@10 not started.
        assert_eq!(a.i_old(ts(9)), ts(9));
        // At m=12: t@10 active.
        assert_eq!(a.i_old(ts(12)), ts(10));
        // At m=7: t@5 active (5 < 7 < 8).
        assert_eq!(a.i_old(ts(7)), ts(5));
        // Boundaries are strict: at m=5 t@5 not yet active; at m=8 ended.
        assert_eq!(a.i_old(ts(5)), ts(5));
        assert_eq!(a.i_old(ts(8)), ts(8));
    }

    #[test]
    fn i_old_with_running_txn() {
        let mut a = ClassActivity::default();
        a.begin(ts(3));
        assert_eq!(a.i_old(ts(100)), ts(3));
        assert_eq!(a.i_old(ts(3)), ts(3)); // strict start
        assert_eq!(a.i_old(ts(2)), ts(2));
    }

    #[test]
    fn i_old_never_exceeds_argument() {
        let mut a = ClassActivity::default();
        a.begin(ts(5));
        a.end(ts(5), ts(20), true);
        for m in 0..25 {
            assert!(a.i_old(ts(m)) <= ts(m));
        }
    }

    #[test]
    fn aborted_txn_bounds_activity_and_c_late() {
        let mut a = ClassActivity::default();
        a.begin(ts(5));
        a.end(ts(5), ts(9), false); // aborted at 9
                                    // Active for i_old purposes during (5, 9).
        assert_eq!(a.i_old(ts(7)), ts(5));
        assert_eq!(a.i_old(ts(10)), ts(10));
        // The abort end bounds C_late exactly like a commit would:
        // I_old(C_late(x)) ≥ x must hold for everything I_old counts.
        assert_eq!(a.c_late(ts(7)), CLate::Time(ts(9)));
        assert_eq!(a.i_old(ts(9)), ts(9)); // pairing inequality at work
    }

    #[test]
    fn c_late_takes_latest_commit_of_active() {
        let mut a = ClassActivity::default();
        a.begin(ts(2));
        a.begin(ts(4));
        a.end(ts(2), ts(10), true);
        a.end(ts(4), ts(8), true);
        // At m=5 both active; latest commit = 10.
        assert_eq!(a.c_late(ts(5)), CLate::Time(ts(10)));
        // At m=9 only t@2 active (4..8 ended).
        assert_eq!(a.c_late(ts(9)), CLate::Time(ts(10)));
        // At m=11 none active.
        assert_eq!(a.c_late(ts(11)), CLate::Time(ts(11)));
    }

    #[test]
    fn c_late_not_computable_while_running() {
        let mut a = ClassActivity::default();
        a.begin(ts(5));
        assert_eq!(a.c_late(ts(7)), CLate::NotComputable);
        assert_eq!(a.c_late(ts(5)), CLate::NotComputable); // started AT m
        assert_eq!(a.c_late(ts(4)), CLate::Time(ts(4))); // started after m
        a.end(ts(5), ts(9), true);
        assert_eq!(a.c_late(ts(7)), CLate::Time(ts(9)));
    }

    #[test]
    fn prune_drops_only_history() {
        let mut a = ClassActivity::default();
        a.begin(ts(1));
        a.end(ts(1), ts(2), true);
        a.begin(ts(3)); // still running
        a.begin(ts(4));
        a.end(ts(4), ts(6), true);
        assert_eq!(a.prune_ended_before(ts(5)), 1); // only (1,2)
        assert_eq!(a.len(), 2);
        // Queries at m >= watermark unaffected.
        assert_eq!(a.i_old(ts(5)), ts(3));
    }

    #[test]
    fn absorb_is_idempotent_and_sorted() {
        let mut a = ClassActivity::default();
        a.begin(ts(10));
        let intervals = vec![(ts(5), Some(ts(8)), true), (ts(12), None, false)];
        a.absorb(&intervals);
        a.absorb(&intervals); // idempotent
        assert_eq!(a.len(), 3);
        assert_eq!(a.i_old(ts(6)), ts(5));
        assert_eq!(a.i_old(ts(15)), ts(10)); // running copy at 10
        let exported = a.export();
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
    }

    #[test]
    fn mirror_end_completes_inserts_and_ignores() {
        let r = ActivityRegistry::new(1);
        let c = ClassId(0);
        // Completes a running copied interval.
        r.absorb_class(c, &[(ts(5), None, false)]);
        r.mirror_end(c, ts(5), ts(9), true);
        assert_eq!(r.c_late(c, ts(7)), CLate::Time(ts(9)));
        // Inserts a completed interval when absent.
        r.mirror_end(c, ts(20), ts(25), true);
        assert_eq!(r.i_old(c, ts(22)), ts(20));
        // Ignores an already-ended interval (no panic, no change).
        r.mirror_end(c, ts(5), ts(99), false);
        assert_eq!(r.c_late(c, ts(7)), CLate::Time(ts(9)));
    }

    #[test]
    fn class_has_running_tracks_lifecycle() {
        let r = ActivityRegistry::new(2);
        assert!(!r.class_has_running(ClassId(0)));
        r.begin(ClassId(0), ts(1));
        assert!(r.class_has_running(ClassId(0)));
        assert!(!r.class_has_running(ClassId(1)));
        r.abort(ClassId(0), ts(1), ts(2));
        assert!(!r.class_has_running(ClassId(0)));
    }

    #[test]
    fn registry_round_trip() {
        let r = ActivityRegistry::new(2);
        r.begin(ClassId(0), ts(1));
        r.begin(ClassId(1), ts(2));
        assert_eq!(r.oldest_running(), Some(ts(1)));
        r.commit(ClassId(0), ts(1), ts(5));
        assert_eq!(r.oldest_running(), Some(ts(2)));
        r.abort(ClassId(1), ts(2), ts(6));
        assert_eq!(r.oldest_running(), None);
        assert_eq!(r.i_old(ClassId(0), ts(3)), ts(1));
        assert_eq!(r.c_late(ClassId(0), ts(3)), CLate::Time(ts(5)));
        assert_eq!(r.interval_count(), 2);
        assert_eq!(r.prune_ended_before(ts(100)), 2);
    }

    #[test]
    fn begin_with_draws_monotone_starts_under_the_lock() {
        let r = ActivityRegistry::new(1);
        let clock = txn_model::LogicalClock::new();
        let mut starts = Vec::new();
        for _ in 0..100 {
            starts.push(r.begin_with(ClassId(0), || clock.tick()));
        }
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(r.interval_count(), 100);
    }

    /// The O(active) acceptance criterion: after histories settle (or are
    /// pruned), `i_old` cost is independent of how many transactions ever
    /// began — the scan touches only the active window.
    #[test]
    fn i_old_scan_cost_independent_of_history_length() {
        let probe = |total: u64| -> u64 {
            let mut a = ClassActivity::default();
            // `total` fully-ended transactions...
            for i in 0..total {
                let s = ts(2 * i + 1);
                a.begin(s);
                a.end(s, ts(2 * i + 2), true);
            }
            // ...plus a small live window.
            let now = 2 * total + 10;
            for k in 0..3 {
                a.begin(ts(now + k));
            }
            let before = a.scan_count();
            a.i_old(ts(now + 5));
            a.scan_count() - before
        };
        let small = probe(100);
        let large = probe(10_000);
        assert_eq!(
            small, large,
            "i_old must not rescan the ended prefix (scan cost {small} vs {large})"
        );
        assert!(small <= 4, "scan bounded by the active window, got {small}");
    }

    /// Same independence claim via the registry + prune path.
    #[test]
    fn prune_resets_scan_window() {
        let r = ActivityRegistry::new(1);
        let c = ClassId(0);
        for i in 0..1000u64 {
            let s = ts(2 * i + 1);
            r.begin(c, s);
            r.commit(c, s, ts(2 * i + 2));
        }
        r.prune_ended_before(ts(5000));
        assert_eq!(r.interval_count(), 0);
        let before = r.scan_count();
        assert_eq!(r.i_old(c, ts(5001)), ts(5001));
        assert_eq!(r.scan_count() - before, 0, "nothing left to scan");
    }
}
