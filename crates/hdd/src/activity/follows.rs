//! The *topologically follows* relation `⇒` (Section 4.3).
//!
//! Defined for transactions `t1 ∈ T_i`, `t2 ∈ T_j` whose classes lie on
//! one critical path:
//!
//! 1. `T_i = T_j`:  `t1 ⇒ t2` iff `I(t1) > I(t2)`;
//! 2. `T_i ↑ T_j` (t1's class higher):  `t1 ⇒ t2` iff
//!    `I(t1) ≥ A_j^i(I(t2))`;
//! 3. `T_j ↑ T_i` (t2's class higher):  `t1 ⇒ t2` iff
//!    `I(t2) < A_i^j(I(t1))`.
//!
//! `⇒` is anti-symmetric (Property 1.1) and critical-path transitive
//! (Property 1.2); the scheduler enforces the **partition synchronization
//! rule** — every direct dependency `t1 → t2` implies `t1 ⇒ t2` — which by
//! Theorem 1 keeps the dependency graph acyclic. This module exists to
//! *check* the relation in tests, property tests and the Figure 7 bench;
//! the scheduler itself never evaluates `⇒` (that is the point of the
//! algorithm: Protocols A/B enforce it implicitly).

use super::funcs::ActivityFuncs;
use txn_model::{ClassId, Timestamp};

/// A transaction's coordinates for the relation: class and initiation
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnCoord {
    /// The transaction's class.
    pub class: ClassId,
    /// Its initiation time `I(t)`.
    pub start: Timestamp,
}

impl TxnCoord {
    /// Build a coordinate.
    pub fn new(class: ClassId, start: Timestamp) -> Self {
        TxnCoord { class, start }
    }
}

/// Evaluate `t1 ⇒ t2`. Returns `None` when the classes are not on one
/// critical path (the relation is undefined there: the `A` function does
/// not exist).
pub fn topologically_follows(
    funcs: &ActivityFuncs<'_>,
    t1: TxnCoord,
    t2: TxnCoord,
) -> Option<bool> {
    let h = funcs.hierarchy();
    if t1.class == t2.class {
        return Some(t1.start > t2.start);
    }
    if h.higher_than(t1.class, t2.class) {
        // Case 2: t1 higher; compare I(t1) against A from t2's class up
        // to t1's class applied to I(t2).
        Some(t1.start >= funcs.a_fn(t2.class, t1.class, t2.start))
    } else if h.higher_than(t2.class, t1.class) {
        // Case 3: t2 higher.
        Some(t2.start < funcs.a_fn(t1.class, t2.class, t1.start))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::registry::ActivityRegistry;
    use crate::analysis::{AccessSpec, Hierarchy};
    use txn_model::SegmentId;

    fn ts(t: u64) -> Timestamp {
        Timestamp(t)
    }

    /// Chain 2 → 1 → 0 plus a sibling 3 → 0 (3 and 1 incomparable...
    /// actually 3 → 0 makes 3 comparable to 0 but not to 1 or 2).
    fn hierarchy() -> Hierarchy {
        let s = SegmentId;
        Hierarchy::build(
            4,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c2", vec![s(2)], vec![s(1), s(0)]),
                AccessSpec::new("c3", vec![s(3)], vec![s(0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn same_class_is_initiation_order() {
        let h = hierarchy();
        let r = ActivityRegistry::new(4);
        let f = ActivityFuncs::new(&h, &r);
        let a = TxnCoord::new(ClassId(1), ts(5));
        let b = TxnCoord::new(ClassId(1), ts(9));
        assert_eq!(topologically_follows(&f, b, a), Some(true));
        assert_eq!(topologically_follows(&f, a, b), Some(false));
        assert_eq!(topologically_follows(&f, a, a), Some(false));
    }

    #[test]
    fn cross_class_uses_activity_link() {
        let h = hierarchy();
        let r = ActivityRegistry::new(4);
        // Class 1 (higher than 2) has a long-running txn since 3.
        r.begin(ClassId(1), ts(3));
        let f = ActivityFuncs::new(&h, &r);

        // t_low ∈ T_2 at 10; t_high ∈ T_1 at 3 (the running one).
        // Case 3 for (t_low ⇒ t_high): I(t_high)=3 < A_2^1(10)=I_1_old(10)=3?
        // 3 < 3 is false → t_low does NOT follow t_high.
        let t_low = TxnCoord::new(ClassId(2), ts(10));
        let t_high = TxnCoord::new(ClassId(1), ts(3));
        assert_eq!(topologically_follows(&f, t_low, t_high), Some(false));

        // An older high txn that committed earlier IS followed.
        let t_high_old = TxnCoord::new(ClassId(1), ts(2));
        assert_eq!(topologically_follows(&f, t_low, t_high_old), Some(true));

        // Case 2: t_high ⇒ t_low iff I(t_high) ≥ A_2^1(I(t_low)) =
        // I_1_old(10) = 3: the running txn at 3 follows t_low.
        assert_eq!(topologically_follows(&f, t_high, t_low), Some(true));
    }

    #[test]
    fn anti_symmetry_property_1_1() {
        let h = hierarchy();
        let r = ActivityRegistry::new(4);
        r.begin(ClassId(1), ts(4));
        r.begin(ClassId(0), ts(2));
        let f = ActivityFuncs::new(&h, &r);
        let pairs = [
            (
                TxnCoord::new(ClassId(2), ts(7)),
                TxnCoord::new(ClassId(1), ts(4)),
            ),
            (
                TxnCoord::new(ClassId(2), ts(7)),
                TxnCoord::new(ClassId(0), ts(2)),
            ),
            (
                TxnCoord::new(ClassId(1), ts(4)),
                TxnCoord::new(ClassId(0), ts(2)),
            ),
            (
                TxnCoord::new(ClassId(1), ts(1)),
                TxnCoord::new(ClassId(1), ts(6)),
            ),
        ];
        for (a, b) in pairs {
            let ab = topologically_follows(&f, a, b).unwrap();
            let ba = topologically_follows(&f, b, a).unwrap();
            assert!(!(ab && ba), "⇒ must be anti-symmetric for {a:?}, {b:?}");
        }
    }

    #[test]
    fn undefined_off_critical_path() {
        let h = hierarchy();
        let r = ActivityRegistry::new(4);
        let f = ActivityFuncs::new(&h, &r);
        // Classes 2 and 3 are not on one critical path.
        let a = TxnCoord::new(ClassId(2), ts(5));
        let b = TxnCoord::new(ClassId(3), ts(6));
        assert_eq!(topologically_follows(&f, a, b), None);
    }

    #[test]
    fn transitivity_spot_check_property_1_2() {
        // t1 ∈ T_2, t2 ∈ T_1, t3 ∈ T_0 on the chain; verify
        // t1 ⇒ t2 ∧ t2 ⇒ t3 → t1 ⇒ t3 over a grid of times.
        let h = hierarchy();
        let r = ActivityRegistry::new(4);
        r.begin(ClassId(1), ts(5));
        r.commit(ClassId(1), ts(5), ts(9));
        r.begin(ClassId(0), ts(3));
        r.commit(ClassId(0), ts(3), ts(12));
        r.begin(ClassId(0), ts(11));
        let f = ActivityFuncs::new(&h, &r);
        for i1 in 1..15u64 {
            for i2 in 1..15u64 {
                for i3 in 1..15u64 {
                    let t1 = TxnCoord::new(ClassId(2), ts(i1));
                    let t2 = TxnCoord::new(ClassId(1), ts(i2));
                    let t3 = TxnCoord::new(ClassId(0), ts(i3));
                    let ab = topologically_follows(&f, t1, t2).unwrap();
                    let bc = topologically_follows(&f, t2, t3).unwrap();
                    let ac = topologically_follows(&f, t1, t3).unwrap();
                    if ab && bc {
                        assert!(ac, "transitivity violated at ({i1},{i2},{i3})");
                    }
                }
            }
        }
    }
}
