//! Activity-link machinery (Sections 4.1, 4.3, 5.1): per-class activity
//! histories, the `A`/`B`/`E` functions, and the `⇒` relation checker.

pub mod follows;
pub mod funcs;
pub mod registry;

pub use follows::{topologically_follows, TxnCoord};
pub use funcs::ActivityFuncs;
pub use registry::{ActivityRegistry, CLate, ClassActivity, ClassStats};
