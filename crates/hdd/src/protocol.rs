//! The HDD scheduler: Protocols A, B and C over a validated hierarchy
//! (Sections 4.2 and 5.2).
//!
//! * **Protocol A** — an update transaction `t ∈ T_i` reading a granule
//!   `d ∈ D_j`, `j ≠ i` (necessarily `T_j ↑ T_i`), is served the version
//!   with the largest write timestamp below `A_i^j(I(t))`. *No trace of
//!   the access is registered* and the read never waits.
//! * **Protocol B** — accesses inside the root segment use timestamp
//!   ordering: multi-version (Reed) or basic single-version TO, selected
//!   by [`ProtocolBMode`].
//! * **Protocol C** — an ad-hoc read-only transaction whose read segments
//!   do *not* lie on one critical path reads below the newest time wall
//!   released before its initiation. Read-only transactions whose
//!   segments do lie on one critical path ride Protocol A anchored at a
//!   fictitious class below the chain (Section 5.0, Figure 8). Neither
//!   kind registers reads or waits (except, for Protocol C, an initial
//!   wait when no wall has been released yet).
//!
//! A synchronization subtlety: version chains are updated **before** the
//! activity registry on commit/abort. Protocol A's bound proof guarantees
//! every version below the bound was written by a no-longer-active
//! transaction; updating chains first makes that state visible before the
//! registry stops reporting the writer as active, so a bound computed
//! from the registry never selects a still-pending version.

use crate::activity::{ActivityFuncs, ActivityRegistry};
use crate::analysis::Hierarchy;
use crate::timewall::{TimeWall, TimeWallService};
use mvstore::{MvtoReadResult, MvtoWriteResult, StorageBackend};
use obs::{RejectReason, SpanEvent, Terminal, TraceEvent, WaitCause, NO_CLASS};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use txn_model::{
    ClassId, CommitOutcome, GranuleId, LogicalClock, Metrics, ReadOutcome, ScheduleEvent,
    ScheduleLog, Scheduler, Timestamp, TxnHandle, TxnId, TxnProfile, Value, WriteOutcome,
};

/// Intra-class (Protocol B) synchronization flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolBMode {
    /// Multi-version timestamp ordering (Reed 78). Reads never reject;
    /// writes reject when they would invalidate a younger read.
    Mvto,
    /// Basic timestamp ordering (Bernstein 80): reads of granules already
    /// overwritten by younger transactions reject too.
    BasicTo,
}

/// How a read-only transaction is synchronized.
#[derive(Debug, Clone)]
enum RoMode {
    /// Read segments lie on one critical path: Protocol A from a
    /// fictitious class below `base`.
    OnChain { base: ClassId },
    /// Protocol C: pinned to a released time wall (lazily bound).
    Wall { wall: Option<Arc<TimeWall>> },
}

/// Provenance of an unregistered read's bound, for tracing: which rule
/// produced it and (for activity-link bounds) what it cost to compute.
#[derive(Debug, Clone, Copy)]
enum ReadProv {
    /// Protocol A: activity-link bound anchored at `reader_class` with
    /// argument `m`; computing it scanned `scanned` registry entries.
    A {
        reader_class: ClassId,
        m: Timestamp,
        scanned: u64,
    },
    /// Protocol C: time-wall component of the wall anchored at `anchor`.
    Wall { anchor: Timestamp },
}

#[derive(Debug)]
struct TxnState {
    class: Option<ClassId>,
    start: Timestamp,
    write_set: Vec<GranuleId>,
    ro_mode: Option<RoMode>,
    /// Lease expiry (when [`HddConfig::txn_lease`] is set): renewed on
    /// every read/write, reaped past-due by the straggler watchdog.
    deadline: Option<Instant>,
}

/// Power-of-two shard count for the live-transaction table.
const TXN_SHARDS: usize = 16;

/// Live-transaction state, sharded by transaction id so concurrent
/// workers touching different transactions never contend (ids are
/// allocated sequentially, so `id & mask` spreads neighbors across
/// shards). Mirrors how `MvStore` shards its chain map.
#[derive(Debug)]
struct TxnTable {
    shards: Vec<Mutex<HashMap<TxnId, TxnState>>>,
}

impl TxnTable {
    fn new() -> Self {
        TxnTable {
            shards: (0..TXN_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, id: TxnId) -> &Mutex<HashMap<TxnId, TxnState>> {
        &self.shards[(id.0 as usize) & (TXN_SHARDS - 1)]
    }

    fn insert(&self, id: TxnId, st: TxnState) {
        self.shard(id).lock().insert(id, st);
    }

    fn remove(&self, id: TxnId) -> Option<TxnState> {
        self.shard(id).lock().remove(&id)
    }

    /// Run `f` on the transaction's state (if live) under its shard lock.
    fn with<R>(&self, id: TxnId, f: impl FnOnce(Option<&mut TxnState>) -> R) -> R {
        f(self.shard(id).lock().get_mut(&id))
    }

    /// Visit every live transaction (shard at a time; GC watermark scan).
    fn for_each(&self, mut f: impl FnMut(&TxnState)) {
        for shard in &self.shards {
            for st in shard.lock().values() {
                f(st);
            }
        }
    }

    /// Remove and return every transaction whose lease expired before
    /// `now` (shard at a time; the watchdog sweep).
    fn drain_expired(&self, now: Instant) -> Vec<(TxnId, TxnState)> {
        let mut expired = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let due: Vec<TxnId> = shard
                .iter()
                .filter(|(_, st)| st.deadline.is_some_and(|d| d <= now))
                .map(|(id, _)| *id)
                .collect();
            for id in due {
                if let Some(st) = shard.remove(&id) {
                    expired.push((id, st));
                }
            }
        }
        expired
    }
}

/// Configuration for [`HddScheduler`].
#[derive(Debug, Clone)]
pub struct HddConfig {
    /// Protocol B flavor.
    pub protocol_b: ProtocolBMode,
    /// Release a new time wall at most once per this many maintenance
    /// calls (Section 5.2 computes walls "at certain intervals").
    pub wall_interval: u64,
    /// Run garbage collection every this many maintenance calls
    /// (0 disables GC).
    pub gc_interval: u64,
    /// Straggler-watchdog lease. `Some(lease)` gives every transaction a
    /// deadline renewed on each read/write; [`HddScheduler::maintenance`]
    /// aborts transactions past it so a stalled or crashed worker cannot
    /// pin `I_old(m)` (and with it the time wall and GC) forever. `None`
    /// (the default) disables the watchdog.
    pub txn_lease: Option<Duration>,
    /// Fold the workload-drift sketch (`obs::drift`) every this many
    /// maintenance calls (0 disables the automatic fold; dashboards and
    /// experiments can still force one via
    /// [`HddScheduler::refresh_drift_now`]). Only active while both the
    /// obs sidecar and its drift board are enabled.
    pub drift_interval: u64,
}

impl Default for HddConfig {
    fn default() -> Self {
        HddConfig {
            protocol_b: ProtocolBMode::Mvto,
            wall_interval: 8,
            gc_interval: 64,
            txn_lease: None,
            drift_interval: 16,
        }
    }
}

/// Substrate shared by scheduler epochs (and, in dynamic restructuring,
/// across hierarchy switches): the store, the clock, the schedule log,
/// the metrics and the transaction-id allocator.
#[derive(Debug, Clone)]
pub struct SchedulerCore {
    /// The multi-version storage tier (in-memory by default; the
    /// log-structured file backend for the durable configuration).
    pub store: Arc<dyn StorageBackend>,
    /// The global logical clock.
    pub clock: Arc<LogicalClock>,
    /// The schedule log (serializability checking spans epochs).
    pub log: Arc<ScheduleLog>,
    /// Cost counters.
    pub metrics: Arc<Metrics>,
    /// Transaction-id allocator (ids stay unique across epochs).
    pub txn_ids: Arc<AtomicU64>,
}

impl SchedulerCore {
    /// A fresh core over a storage backend and clock (`Arc<MvStore>`
    /// coerces, so existing call sites read unchanged).
    pub fn new(store: Arc<dyn StorageBackend>, clock: Arc<LogicalClock>) -> Self {
        SchedulerCore {
            store,
            clock,
            log: Arc::new(ScheduleLog::new()),
            metrics: Arc::new(Metrics::default()),
            txn_ids: Arc::new(AtomicU64::new(1)),
        }
    }
}

/// The HDD concurrency control.
pub struct HddScheduler {
    hierarchy: Arc<Hierarchy>,
    core: SchedulerCore,
    registry: ActivityRegistry,
    walls: TimeWallService,
    txns: TxnTable,
    config: HddConfig,
    maintenance_calls: AtomicU64,
}

impl HddScheduler {
    /// Build a scheduler over a validated hierarchy and a (possibly
    /// pre-seeded) store.
    pub fn new(
        hierarchy: Arc<Hierarchy>,
        store: Arc<dyn StorageBackend>,
        clock: Arc<LogicalClock>,
        config: HddConfig,
    ) -> Self {
        Self::with_core(hierarchy, SchedulerCore::new(store, clock), config)
    }

    /// Build a scheduler over an existing core (dynamic restructuring
    /// hands the same core to the next epoch).
    pub fn with_core(hierarchy: Arc<Hierarchy>, core: SchedulerCore, config: HddConfig) -> Self {
        let n = hierarchy.class_count();
        // Dimension the gauge board to this hierarchy (first-wins, so a
        // restructured epoch sharing the core keeps the original shape).
        core.metrics
            .obs
            .gauges
            .configure(n as u32, hierarchy.segment_count() as u32);
        core.metrics
            .obs
            .drift
            .configure(n as u32, hierarchy.segment_count() as u32);
        HddScheduler {
            hierarchy,
            core,
            registry: ActivityRegistry::new(n),
            walls: TimeWallService::new(),
            txns: TxnTable::new(),
            config,
            maintenance_calls: AtomicU64::new(0),
        }
    }

    /// The shared core.
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// The hierarchy in force.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The activity registry (exposed for tests and the Figure 6/7
    /// benches).
    pub fn registry(&self) -> &ActivityRegistry {
        &self.registry
    }

    /// The time-wall service (exposed for the Figure 9 bench).
    pub fn walls(&self) -> &TimeWallService {
        &self.walls
    }

    /// The underlying storage backend. The `'static` bound on the trait
    /// object keeps the `impl dyn StorageBackend` conveniences
    /// (`latest_value`, `with_chain`) callable on the return value.
    pub fn store(&self) -> &(dyn StorageBackend + 'static) {
        self.core.store.as_ref()
    }

    /// Read `g` under a (possibly historical) time wall — Reed's
    /// "arbitrary time slice" retrieval (cited in Section 1.3), made
    /// cut-consistent by Theorem 2: reading the latest version below
    /// `E_s^i(m)` in every segment observes a consistent database state.
    /// Requires no transaction, registers nothing, never waits.
    ///
    /// Slices older than the garbage-collection watermark may have been
    /// compacted to their newest surviving version per granule.
    pub fn read_at_wall(&self, wall: &TimeWall, g: GranuleId) -> Value {
        let bound = wall.component(self.hierarchy.class_of(g.segment));
        self.core.store.value_as_of(g, bound)
    }

    /// Attempt to release a time wall now; returns true on success.
    pub fn try_release_wall(&self) -> bool {
        let funcs = ActivityFuncs::new(&self.hierarchy, &self.registry);
        let released =
            self.walls
                .try_release(&self.hierarchy, &funcs, self.core.clock.now(), || {
                    self.core.clock.tick()
                });
        if let Some(w) = &released {
            Metrics::bump(&self.core.metrics.timewalls_released);
            self.core.metrics.obs.emit(TraceEvent::WallRelease {
                anchor: w.anchor_time.raw(),
                released_at: w.released_at.raw(),
            });
            // Flight-recorder wake event: wall-pending cause edges in
            // sampled flights resolve to this release.
            let obs = &self.core.metrics.obs;
            if obs.enabled() && obs.flight.active() {
                obs.flight.push(SpanEvent::WallRelease {
                    anchor: w.anchor_time.raw(),
                    at_ns: obs.flight.now_ns(),
                });
            }
        }
        released.is_some()
    }

    /// Garbage-collect versions and activity history below the safe
    /// watermark. Returns versions reclaimed.
    pub fn run_gc(&self) -> usize {
        let wm = self.gc_watermark();
        let reclaimed = self.core.store.prune_before(wm);
        self.registry.prune_ended_before(wm);
        self.walls.retire_old(4);
        if reclaimed > 0 {
            Metrics::add(&self.core.metrics.versions_gced, reclaimed as u64);
            self.core.metrics.obs.emit(TraceEvent::GcReclaim {
                watermark: wm.raw(),
                reclaimed: reclaimed as u64,
            });
        }
        if self.core.metrics.obs.enabled() {
            // GC just rewrote the chain shape; republish the store
            // gauges at the freshest point instead of waiting for the
            // next throttled refresh.
            let gauges = &self.core.metrics.obs.gauges;
            gauges.set_gc_watermark(wm.raw());
            let versions = self.core.store.version_count() as u64;
            let granules = self.core.store.granule_count() as u64;
            gauges.set_store(
                versions,
                granules,
                self.core.store.max_chain_len() as u64,
                versions.saturating_sub(granules),
            );
        }
        reclaimed
    }

    /// Refresh the gauge board from live scheduler state. Called from
    /// the maintenance tick when observability is enabled; per-class
    /// registry sampling runs every 4th call and the O(granules) store
    /// scan every 16th, so the 50 µs maintenance cadence never turns
    /// the board into a contention source. Hot paths only ever touch
    /// the board through `record_staleness` (O(1) relaxed).
    fn refresh_gauges(&self, call: u64) {
        let gauges = &self.core.metrics.obs.gauges;
        let now = self.core.clock.now();
        gauges.set_clock(now.raw());
        if !call.is_multiple_of(4) {
            return;
        }
        if let Some(w) = self.walls.latest() {
            let floor = w.floor();
            gauges.set_wall(
                w.anchor_time.raw(),
                w.released_at.raw(),
                floor.raw(),
                now.raw().saturating_sub(floor.raw()),
            );
            let mut dragger: Option<u32> = None;
            for c in 0..self.hierarchy.class_count() {
                let class = ClassId(c as u32);
                gauges.set_wall_component(c as u32, w.component(class).raw());
                if dragger.is_none() && w.component(class) == floor {
                    // The wall floor is min over components; the first
                    // class sitting at it is the "dragger" whose
                    // `I_old` holds every Protocol C reader back.
                    dragger = Some(c as u32);
                }
                for seg in self.hierarchy.segments_of(class) {
                    gauges.set_segment_wall(seg.0, w.component(class).raw());
                }
            }
            let drift = &self.core.metrics.obs.drift;
            if drift.enabled() {
                drift.note_wall_floor(dragger, now.raw());
            }
        }
        let mut active_total = 0u64;
        let mut intervals_total = 0u64;
        let mut lag_total = 0u64;
        for c in 0..self.hierarchy.class_count() {
            let class = ClassId(c as u32);
            let st = self.registry.class_stats(class);
            let i_old = self.registry.i_old(class, now);
            gauges.set_class(
                c as u32,
                i_old.raw(),
                st.running as u64,
                st.settled_lag() as u64,
            );
            active_total += st.running as u64;
            intervals_total += st.intervals as u64;
            lag_total += st.settled_lag() as u64;
        }
        gauges.set_activity(active_total, intervals_total, lag_total);
        if call.is_multiple_of(16) {
            let versions = self.core.store.version_count() as u64;
            let granules = self.core.store.granule_count() as u64;
            gauges.set_store(
                versions,
                granules,
                self.core.store.max_chain_len() as u64,
                versions.saturating_sub(granules),
            );
        }
    }

    /// Force a full gauge refresh immediately (dashboards and
    /// experiments call this before sampling so every cell — including
    /// the throttled store scan — is current).
    pub fn refresh_gauges_now(&self) {
        self.refresh_gauges(16); // 16 ≡ 0 mod 4 and mod 16: full refresh
    }

    /// Fold the drift sketch: score the interval since the previous
    /// fold against the EWMA baselines and, on a fresh threshold
    /// crossing, emit a `drift-trip` trace instant. Runs from the
    /// maintenance tick at [`HddConfig::drift_interval`] cadence; E20
    /// and the advisor binary call it directly for deterministic fold
    /// boundaries.
    pub fn refresh_drift_now(&self) {
        let obs = &self.core.metrics.obs;
        if let Some(trip) = obs.drift.fold() {
            obs.emit(TraceEvent::DriftTrip {
                fold: trip.fold,
                score_milli: trip.score_milli,
                threshold_milli: trip.threshold_milli,
                dragger_class: trip.dragger.unwrap_or(u32::MAX),
            });
        }
    }

    /// The GC watermark: nothing at or above it may be reclaimed.
    ///
    /// Activity-link bounds are compositions of `I_old`, which can step
    /// *below* the oldest running transaction's start (to the start of a
    /// transaction that was active at the probed instant). But any `A`,
    /// `A`-from-below or `E` evaluation applies at most `n_classes` such
    /// steps (one per class along a critical path / UCP), and `I_old` is
    /// monotone, so a **bounded descent** is a safe floor: start from
    /// the minimum of `now`, every retained/pending wall anchor and
    /// floor, and the starts of live read-only transactions, then apply
    /// `min over classes of I_old` exactly `n_classes` times. Every
    /// bound any present or future evaluation can produce stays at or
    /// above the result (new transactions only start later, and
    /// `I_old(m)` is immutable for `m ≤ now`), so pruning versions and
    /// activity history strictly below it is safe.
    pub fn gc_watermark(&self) -> Timestamp {
        let mut f = self.core.clock.now();
        for w in self.walls.released_all() {
            f = f.min(w.floor()).min(w.anchor_time);
        }
        if let Some(anchor) = self.walls.pending_anchor() {
            f = f.min(anchor);
        }
        self.txns.for_each(|st| {
            if let Some(ro) = &st.ro_mode {
                let floor = match ro {
                    RoMode::Wall { wall: Some(w) } => w.floor().min(w.anchor_time),
                    _ => st.start,
                };
                f = f.min(floor);
            }
        });
        // Bounded descent: one round per class (the longest critical
        // path / UCP visits each class at most once).
        for _ in 0..self.hierarchy.class_count() {
            let mut nf = f;
            for c in 0..self.hierarchy.class_count() {
                nf = nf.min(self.registry.i_old(ClassId(c as u32), f));
            }
            if nf == f {
                break;
            }
            f = nf;
        }
        f
    }

    /// Abort every transaction whose watchdog lease expired, retiring
    /// its registry interval so `I_old(m)` — and with it activity-link
    /// bounds, the time wall and the GC watermark — resumes advancing.
    /// Returns the number of stragglers reaped.
    ///
    /// Safe against the straggler waking back up: the state is removed
    /// from the live table first, so a late `read`/`write` observes a
    /// dead transaction and returns `Abort`, a late `commit` returns
    /// `Aborted`, and a version installed in the race window is
    /// retracted by the writer's own liveness check.
    pub fn reap_stragglers(&self) -> usize {
        let now = Instant::now();
        let expired = self.txns.drain_expired(now);
        let reaped = expired.len();
        for (id, st) in expired {
            // Chains first, then the registry (see module docs).
            self.core.store.abort_writes(id, &st.write_set);
            let abort_ts = match st.class {
                Some(class) => self
                    .registry
                    .end_with(class, st.start, false, || self.core.clock.tick()),
                None => self.core.clock.tick(),
            };
            self.core
                .log
                .record(ScheduleEvent::Abort { txn: id, abort_ts });
            Metrics::bump(&self.core.metrics.aborts);
            self.core.metrics.reject(
                RejectReason::WatchdogAbort,
                id.0,
                st.class.map_or(0, |c| c.0),
                0,
            );
            let overdue_micros = st
                .deadline
                .map_or(0, |d| now.saturating_duration_since(d).as_micros() as u64);
            self.core.metrics.obs.emit(TraceEvent::WatchdogAbort {
                txn: id.0,
                start: st.start.raw(),
                overdue_micros,
            });
            // Close the sampled flight: a crashed worker never reaches
            // a driver terminal, so the reap is what guarantees no
            // span leaks (E16 invariant). Last terminal wins in
            // assembly, so this supersedes a chaos `Abandoned`.
            let obs = &self.core.metrics.obs;
            if obs.enabled() && obs.flight.sampled(id.0) {
                obs.flight.push(SpanEvent::End {
                    txn: id.0,
                    at_ns: obs.flight.now_ns(),
                    terminal: Terminal::Reaped,
                });
            }
        }
        reaped
    }

    fn lease_deadline(&self) -> Option<Instant> {
        self.config.txn_lease.map(|l| Instant::now() + l)
    }

    fn funcs(&self) -> ActivityFuncs<'_> {
        ActivityFuncs::new(&self.hierarchy, &self.registry)
    }

    /// Record a pending-transaction cause edge for `txn`'s block, if
    /// the flight recorder sampled it: the wait ends when `holder`
    /// commits or aborts. The holder's class is resolved with an O(1)
    /// shard lookup — called only after chain locks are released, so
    /// the chain → txn-shard lock order is never nested.
    fn flight_block_on_txn(&self, txn: TxnId, holder: TxnId) {
        let obs = &self.core.metrics.obs;
        if obs.enabled() && obs.flight.sampled(txn.0) {
            let class = self
                .txns
                .with(holder, |st| st.and_then(|s| s.class).map(|c| c.0))
                .unwrap_or(NO_CLASS);
            obs.flight.push(SpanEvent::BlockCause {
                txn: txn.0,
                at_ns: obs.flight.now_ns(),
                cause: WaitCause::TxnPending {
                    txn: holder.0,
                    class,
                },
            });
        }
    }

    /// Record a time-wall cause edge for `txn`'s block (Protocol C
    /// before any wall has been released), if the flight recorder
    /// sampled it: the wait ends at the next wall release.
    fn flight_block_on_wall(&self, txn: TxnId) {
        let obs = &self.core.metrics.obs;
        if obs.enabled() && obs.flight.sampled(txn.0) {
            let anchor = self
                .walls
                .pending_anchor()
                .map_or(0, txn_model::Timestamp::raw);
            obs.flight.push(SpanEvent::BlockCause {
                txn: txn.0,
                at_ns: obs.flight.now_ns(),
                cause: WaitCause::WallPending { anchor },
            });
        }
    }

    /// Protocol A read: serve the latest committed version below `bound`
    /// without registering anything. `prov` says which rule produced the
    /// bound, so enabled tracing can record *why* this version was
    /// picked (and the scan cost of computing the bound).
    fn read_unregistered(
        &self,
        h: &TxnHandle,
        g: GranuleId,
        bound: Timestamp,
        prov: ReadProv,
    ) -> ReadOutcome {
        let r = self
            .core
            .store
            .with_chain(g, |c| c.read_before_unregistered(bound));
        match r {
            MvtoReadResult::Value {
                value,
                version,
                writer,
            } => {
                Metrics::bump(&self.core.metrics.reads);
                self.core.log.record(ScheduleEvent::Read {
                    txn: h.id,
                    granule: g,
                    version,
                    writer,
                });
                // Drift sketch: every cross-class read counts (no
                // flight-recorder sampling, which would skew the share
                // vector), one O(1) relaxed bump when the board is on.
                if self.core.metrics.obs.enabled() && self.core.metrics.obs.drift.enabled() {
                    let reader_row = match prov {
                        ReadProv::A { reader_class, .. } => reader_class.0,
                        ReadProv::Wall { .. } => obs::gauges::WALL_READER,
                    };
                    self.core
                        .metrics
                        .obs
                        .drift
                        .record_access(reader_row, g.segment.0);
                }
                // Sampled mode (flight recorder active): only sampled
                // transactions pay for per-op decision traces; the rest
                // stay counter-only. With the recorder inactive,
                // `trace_txn` is always true — behavior as before.
                if self.core.metrics.obs.enabled() && self.core.metrics.obs.flight.trace_txn(h.id.0)
                {
                    let target_class = self.hierarchy.class_of(g.segment).0;
                    // Cross-read staleness gauge: how far behind the
                    // reader's logical present (`read_ts − version_ts`)
                    // the served version is. Strictly positive on
                    // Protocol A rows (the activity-link bound never
                    // exceeds the reader's start); wall rows saturate
                    // to 0 when a reader predates the wall it adopted
                    // (DESIGN.md §10). O(1) relaxed-atomic record.
                    let reader_row = match prov {
                        ReadProv::A { reader_class, .. } => reader_class.0,
                        ReadProv::Wall { .. } => obs::gauges::WALL_READER,
                    };
                    self.core.metrics.obs.gauges.record_staleness(
                        reader_row,
                        g.segment.0,
                        h.start_ts.raw().saturating_sub(version.raw()),
                    );
                    match prov {
                        ReadProv::A {
                            reader_class,
                            m,
                            scanned,
                        } => {
                            self.core.metrics.obs.registry_scan.record(scanned);
                            self.core.metrics.obs.trace.push(TraceEvent::CrossRead {
                                txn: h.id.0,
                                reader_class: reader_class.0,
                                target_class,
                                segment: g.segment.0,
                                key: g.key,
                                m: m.raw(),
                                bound: bound.raw(),
                                version: version.raw(),
                            });
                        }
                        ReadProv::Wall { anchor } => {
                            self.core.metrics.obs.trace.push(TraceEvent::WallRead {
                                txn: h.id.0,
                                target_class,
                                segment: g.segment.0,
                                key: g.key,
                                anchor: anchor.raw(),
                                bound: bound.raw(),
                                version: version.raw(),
                            });
                        }
                    }
                }
                ReadOutcome::Value(value)
            }
            // Unreachable by the bound proof; block defensively — and
            // count the violation loudly (`wall_violations`).
            MvtoReadResult::BlockOn(waiting_for) => {
                self.core
                    .metrics
                    .reject(RejectReason::WallViolation, h.id.0, g.segment.0, g.key);
                Metrics::bump(&self.core.metrics.blocks);
                self.flight_block_on_txn(h.id, waiting_for);
                ReadOutcome::Block
            }
        }
    }

    /// Protocol B read inside the root segment.
    fn read_root(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        match self.config.protocol_b {
            ProtocolBMode::Mvto => {
                let r = self.core.store.with_chain(g, |c| c.mvto_read(h.start_ts));
                match r {
                    MvtoReadResult::Value {
                        value,
                        version,
                        writer,
                    } => {
                        Metrics::bump(&self.core.metrics.reads);
                        Metrics::bump(&self.core.metrics.read_registrations);
                        self.core.log.record(ScheduleEvent::Read {
                            txn: h.id,
                            granule: g,
                            version,
                            writer,
                        });
                        ReadOutcome::Value(value)
                    }
                    MvtoReadResult::BlockOn(waiting_for) => {
                        // Reading one's own pending version must not block.
                        debug_assert_ne!(waiting_for, h.id);
                        Metrics::bump(&self.core.metrics.blocks);
                        self.flight_block_on_txn(h.id, waiting_for);
                        ReadOutcome::Block
                    }
                }
            }
            ProtocolBMode::BasicTo => {
                // Captured inside the chain closure, attributed after
                // it returns: the cause push takes the holder's txn
                // shard lock, which must not nest inside a chain lock.
                let mut blocked_on = None;
                let out = self.core.store.with_chain(g, |c| {
                    let latest = match c.latest() {
                        Some(v) => v,
                        None => unreachable!("chains are seeded on first touch"),
                    };
                    if latest.writer == h.id {
                        // Own pending write: read it back.
                        let (value, version, writer) =
                            (latest.value.clone(), latest.ts, latest.writer);
                        Metrics::bump(&self.core.metrics.reads);
                        self.core.log.record(ScheduleEvent::Read {
                            txn: h.id,
                            granule: g,
                            version,
                            writer,
                        });
                        return ReadOutcome::Value(value);
                    }
                    if latest.ts > h.start_ts {
                        // Overwritten by a younger transaction: reject.
                        self.core.metrics.reject(
                            RejectReason::ReadTooLate,
                            h.id.0,
                            g.segment.0,
                            g.key,
                        );
                        return ReadOutcome::Abort;
                    }
                    if !latest.committed {
                        Metrics::bump(&self.core.metrics.blocks);
                        blocked_on = Some(latest.writer);
                        return ReadOutcome::Block;
                    }
                    if h.start_ts > c.max_rts {
                        c.max_rts = h.start_ts;
                    }
                    Metrics::bump(&self.core.metrics.reads);
                    Metrics::bump(&self.core.metrics.read_registrations);
                    let v = c.latest().expect("checked above");
                    self.core.log.record(ScheduleEvent::Read {
                        txn: h.id,
                        granule: g,
                        version: v.ts,
                        writer: v.writer,
                    });
                    ReadOutcome::Value(v.value.clone())
                });
                if let Some(holder) = blocked_on {
                    self.flight_block_on_txn(h.id, holder);
                }
                out
            }
        }
    }

    fn state_start(&self, h: &TxnHandle) -> Timestamp {
        h.start_ts
    }
}

impl Scheduler for HddScheduler {
    fn name(&self) -> &'static str {
        "hdd"
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        if let Err(v) = self.hierarchy.validate_profile(profile) {
            panic!(
                "transaction profile violates the hierarchy: {v}; \
                 use dynamic restructuring for ad-hoc update patterns"
            );
        }
        // ordering: Relaxed — id uniqueness comes from fetch_add atomicity;
        // ids publish no memory (txn state is built after, under locks).
        let id = TxnId(self.core.txn_ids.fetch_add(1, Ordering::Relaxed));
        Metrics::bump(&self.core.metrics.begins);

        // Drift sketch: count the arrival and fold the declared profile
        // into the observed co-access edge matrix (the DHG
        // arc-generation rule: writer segment → every accessed
        // segment, diagonal for the write itself). O(|W|·|R∪W|) on the
        // declared sets — single digits for every bundled workload —
        // and only while the board is on.
        {
            let drift = &self.core.metrics.obs.drift;
            if self.core.metrics.obs.enabled() && drift.enabled() {
                drift.note_begin(profile.class.map_or(u32::MAX, |c| c.0));
                for w in &profile.write_segments {
                    drift.record_edge(w.0, w.0);
                    for a in profile.read_segments.iter().chain(&profile.write_segments) {
                        if a != w {
                            drift.record_edge(w.0, a.0);
                        }
                    }
                }
            }
        }

        let ro_mode = if profile.is_read_only() {
            if self
                .hierarchy
                .read_only_on_one_critical_path(&profile.read_segments)
            {
                // Path tables are class-level: map segments through the
                // grouping (segment index ≠ class index once classes
                // hold several segments).
                let idx: Vec<usize> = profile
                    .read_segments
                    .iter()
                    .map(|s| self.hierarchy.class_of(*s).index())
                    .collect();
                let base = self
                    .hierarchy
                    .paths()
                    .lowest_of_chain(&idx)
                    .expect("chain check passed");
                Some(RoMode::OnChain {
                    base: ClassId(base as u32),
                })
            } else {
                Some(RoMode::Wall { wall: None })
            }
        } else {
            None
        };

        // Classed transactions draw their initiation timestamp *inside*
        // the class registry lock (`begin_with`): any concurrent
        // activity-link evaluation either runs before the tick (and its
        // bound cannot reach the new start) or after the insert (and
        // sees the transaction as active). Ticking outside the lock
        // opens a window where a bound computed from the registry
        // overshoots a ticked-but-unregistered transaction, breaking
        // the immutability of `I_old(m)` for `m ≤ now` that Protocol
        // A's proof rests on.
        let start = match profile.class {
            Some(class) => self.registry.begin_with(class, || self.core.clock.tick()),
            None => self.core.clock.tick(),
        };
        self.core.log.record(ScheduleEvent::Begin {
            txn: id,
            start_ts: start,
            class: profile.class,
        });
        self.txns.insert(
            id,
            TxnState {
                class: profile.class,
                start,
                write_set: Vec::new(),
                ro_mode,
                deadline: self.lease_deadline(),
            },
        );
        TxnHandle {
            id,
            start_ts: start,
            class: profile.class,
        }
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        let seg = g.segment;
        // Liveness check + lease heartbeat (each operation renews the
        // watchdog lease), folded into the read-only-mode lookup.
        let deadline = self.lease_deadline();
        let ro = self.txns.with(h.id, |st| {
            st.map(|s| {
                if deadline.is_some() {
                    s.deadline = deadline;
                }
                s.ro_mode.clone()
            })
        });
        let Some(ro) = ro else {
            // Reaped by the watchdog (or already finished): the abort has
            // been logged and accounted; tell the caller to stop.
            return ReadOutcome::Abort;
        };
        if let Some(mode) = ro {
            return match mode {
                RoMode::OnChain { base } => {
                    let (bound, scanned) = self.funcs().a_fn_from_below_counted(
                        base,
                        self.hierarchy.class_of(seg),
                        h.start_ts,
                    );
                    Metrics::bump(&self.core.metrics.cross_class_reads);
                    let prov = ReadProv::A {
                        reader_class: base,
                        m: h.start_ts,
                        scanned,
                    };
                    self.read_unregistered(h, g, bound, prov)
                }
                RoMode::Wall { wall } => {
                    let wall = match wall {
                        Some(w) => w,
                        None => {
                            let picked = self
                                .walls
                                .latest_released_before(h.start_ts)
                                .or_else(|| self.walls.earliest());
                            match picked {
                                Some(w) => {
                                    self.txns.with(h.id, |st| {
                                        if let Some(st) = st {
                                            st.ro_mode = Some(RoMode::Wall {
                                                wall: Some(Arc::clone(&w)),
                                            });
                                        }
                                    });
                                    w
                                }
                                None => {
                                    // No wall released yet at all; wait
                                    // for the service (the only wait
                                    // Protocol C has).
                                    Metrics::bump(&self.core.metrics.blocks);
                                    self.flight_block_on_wall(h.id);
                                    return ReadOutcome::Block;
                                }
                            }
                        }
                    };
                    Metrics::bump(&self.core.metrics.wall_reads);
                    let prov = ReadProv::Wall {
                        anchor: wall.anchor_time,
                    };
                    self.read_unregistered(h, g, wall.component(self.hierarchy.class_of(seg)), prov)
                }
            };
        }

        // Update transactions.
        let class = h.class.expect("update transactions carry a class");
        if self.hierarchy.class_of(seg) == class {
            self.read_root(h, g)
        } else {
            // Protocol A: T_seg is higher than T_class (validated at
            // begin); compute the activity-link bound.
            let m = self.state_start(h);
            let (bound, scanned) =
                self.funcs()
                    .a_fn_counted(class, self.hierarchy.class_of(seg), m);
            Metrics::bump(&self.core.metrics.cross_class_reads);
            let prov = ReadProv::A {
                reader_class: class,
                m,
                scanned,
            };
            self.read_unregistered(h, g, bound, prov)
        }
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        let class = h.class.expect("read-only transactions do not write");
        assert_eq!(
            self.hierarchy.class_of(g.segment),
            class,
            "update transactions write only inside their root class"
        );
        // Wrap the payload once; the chain and the schedule log share it.
        let v = Arc::new(v);
        // Captured inside the chain closure, attributed after it
        // returns (the cause push must not nest inside a chain lock).
        let mut blocked_on = None;
        let result = match self.config.protocol_b {
            ProtocolBMode::Mvto => {
                let value = Arc::clone(&v);
                self.core
                    .store
                    .with_chain(g, |c| c.mvto_write(h.start_ts, value, h.id))
            }
            ProtocolBMode::BasicTo => {
                let value = Arc::clone(&v);
                self.core.store.with_chain(g, |c| {
                    // Re-write of own pending version.
                    if c.version_by_writer(h.id).map(|ver| ver.ts) == Some(h.start_ts) {
                        return c.mvto_write(h.start_ts, value, h.id);
                    }
                    // Basic TO write rules over the (logically
                    // single-version) granule: reject if a younger
                    // transaction read or wrote.
                    if c.max_rts > h.start_ts {
                        return MvtoWriteResult::Rejected;
                    }
                    match c.latest() {
                        Some(latest) if latest.ts > h.start_ts => MvtoWriteResult::Rejected,
                        Some(latest) if !latest.committed && latest.writer != h.id => {
                            // Pending older write: wait for its commit bit.
                            blocked_on = Some(latest.writer);
                            MvtoWriteResult::Blocked
                        }
                        _ => c.mvto_write(h.start_ts, value, h.id),
                    }
                })
            }
        };
        match result {
            MvtoWriteResult::Blocked => {
                Metrics::bump(&self.core.metrics.blocks);
                if let Some(holder) = blocked_on {
                    self.flight_block_on_txn(h.id, holder);
                }
                WriteOutcome::Block
            }
            MvtoWriteResult::Installed => {
                // Record the write in the live state (and renew the
                // lease) *before* logging: if the watchdog reaped this
                // transaction since its last operation, the state is
                // gone, the abort is already logged, and the version
                // just installed must be retracted here — logging it
                // would fabricate a write after the logged abort.
                let deadline = self.lease_deadline();
                let alive = self.txns.with(h.id, |st| match st {
                    Some(st) => {
                        if !st.write_set.contains(&g) {
                            st.write_set.push(g);
                        }
                        if deadline.is_some() {
                            st.deadline = deadline;
                        }
                        true
                    }
                    None => false,
                });
                if !alive {
                    self.core.store.abort_writes(h.id, &[g]);
                    return WriteOutcome::Abort;
                }
                Metrics::bump(&self.core.metrics.writes);
                Metrics::bump(&self.core.metrics.write_registrations);
                self.core.log.record(ScheduleEvent::Write {
                    txn: h.id,
                    granule: g,
                    version: h.start_ts,
                    value: v,
                });
                WriteOutcome::Done
            }
            MvtoWriteResult::Rejected => {
                self.core
                    .metrics
                    .reject(RejectReason::WriteTooLate, h.id.0, g.segment.0, g.key);
                WriteOutcome::Abort
            }
        }
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        let st = self.txns.remove(h.id);
        let Some(st) = st else {
            return CommitOutcome::Aborted; // unknown / already finished
        };
        // Chains first, then the registry (see module docs). The commit
        // timestamp is drawn *inside* the class registry lock
        // (`end_with`), the end-side twin of `begin_with`: ticking
        // outside the lock leaves a window where a terminated
        // transaction still looks active, so `I_old(m)` evaluates low
        // for one reader and high for another at the same `m` —
        // incompatible version choices, a dependency cycle.
        self.core.store.commit_writes(h.id, &st.write_set);
        let commit_ts = match st.class {
            Some(class) => self
                .registry
                .end_with(class, st.start, true, || self.core.clock.tick()),
            None => self.core.clock.tick(),
        };
        self.core.log.record(ScheduleEvent::Commit {
            txn: h.id,
            commit_ts,
        });
        Metrics::bump(&self.core.metrics.commits);
        {
            let drift = &self.core.metrics.obs.drift;
            if self.core.metrics.obs.enabled() && drift.enabled() {
                drift.note_commit(st.class.map_or(u32::MAX, |c| c.0));
            }
        }
        CommitOutcome::Committed(commit_ts)
    }

    fn abort(&self, h: &TxnHandle) {
        let st = self.txns.remove(h.id);
        let Some(st) = st else { return };
        self.core.store.abort_writes(h.id, &st.write_set);
        // Abort timestamps are drawn under the class lock for the same
        // reason as commit timestamps (see `commit` above).
        let abort_ts = match st.class {
            Some(class) => self
                .registry
                .end_with(class, st.start, false, || self.core.clock.tick()),
            None => self.core.clock.tick(),
        };
        self.core.log.record(ScheduleEvent::Abort {
            txn: h.id,
            abort_ts,
        });
        Metrics::bump(&self.core.metrics.aborts);
    }

    fn maintenance(&self) {
        // ordering: Relaxed — private cadence counter for interval gating;
        // no cross-thread data depends on it.
        let n = self.maintenance_calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.config.txn_lease.is_some() {
            self.reap_stragglers();
        }
        if self.config.wall_interval > 0 && n.is_multiple_of(self.config.wall_interval) {
            self.try_release_wall();
        }
        if self.config.gc_interval > 0 && n.is_multiple_of(self.config.gc_interval) {
            self.run_gc();
        }
        if self.core.metrics.obs.enabled() {
            self.refresh_gauges(n);
            if self.config.drift_interval > 0
                && n.is_multiple_of(self.config.drift_interval)
                && self.core.metrics.obs.drift.enabled()
            {
                self.refresh_drift_now();
            }
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.core.log
    }

    fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AccessSpec;
    use mvstore::MvStore;
    use txn_model::{DependencyGraph, SegmentId};

    fn s(i: u32) -> SegmentId {
        SegmentId(i)
    }

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(s(seg), key)
    }

    /// Inventory chain: 2 → 1 → 0.
    fn setup(mode: ProtocolBMode) -> HddScheduler {
        let h = Hierarchy::build(
            3,
            &[
                AccessSpec::new("t1", vec![s(0)], vec![]),
                AccessSpec::new("t2", vec![s(1)], vec![s(0)]),
                AccessSpec::new("t3", vec![s(2)], vec![s(0), s(1), s(2)]),
            ],
        )
        .unwrap();
        let store = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(0));
        store.seed(g(1, 1), Value::Int(0));
        store.seed(g(2, 1), Value::Int(0));
        HddScheduler::new(
            Arc::new(h),
            store,
            Arc::new(LogicalClock::new()),
            HddConfig {
                protocol_b: mode,
                ..HddConfig::default()
            },
        )
    }

    fn profile_t1() -> TxnProfile {
        TxnProfile::update(ClassId(0), vec![])
    }
    fn profile_t2() -> TxnProfile {
        TxnProfile::update(ClassId(1), vec![s(0)])
    }
    fn profile_t3() -> TxnProfile {
        TxnProfile::update(ClassId(2), vec![s(0), s(1), s(2)])
    }

    #[test]
    fn gauge_board_records_staleness_and_refreshes_from_maintenance() {
        let sched = setup(ProtocolBMode::Mvto);
        let gauges = &sched.metrics().obs.gauges;
        assert!(gauges.is_configured(), "with_core dimensions the board");
        assert_eq!(gauges.snapshot().n_classes, 3);
        sched.metrics().obs.set_enabled(true);

        // A Protocol A cross-read populates the (reader=c1, segment=0)
        // staleness cell with a strictly positive sample.
        let t1 = sched.begin(&profile_t1());
        sched.write(&t1, g(0, 1), Value::Int(42));
        assert!(matches!(sched.commit(&t1), CommitOutcome::Committed(_)));
        let t2 = sched.begin(&profile_t2());
        assert!(matches!(sched.read(&t2, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.commit(&t2), CommitOutcome::Committed(_)));
        let snap = gauges.snapshot();
        let cell = snap.staleness_for(1, 0).expect("cross-read cell");
        assert_eq!(cell.hist.count, 1);
        assert!(cell.hist.min >= 1, "staleness is strictly positive");

        // Maintenance refreshed the levels: a wall is published, its
        // lag is consistent, and the store scan ran.
        for _ in 0..40 {
            sched.maintenance(); // releases walls, refreshes gauges
        }
        let snap = gauges.snapshot();
        assert!(snap.wall_released_at > 0, "wall gauges published");
        assert!(snap.wall_floor <= snap.clock_now);
        assert_eq!(
            snap.wall_lag,
            snap.clock_now - snap.wall_floor,
            "wall lag = now − floor at refresh time"
        );
        assert!(snap.store_versions >= snap.store_granules);
        assert!(snap.store_max_chain >= 1);
        assert_eq!(snap.classes.len(), 3);
        assert_eq!(snap.segment_walls.len(), 3);
        for c in &snap.classes {
            assert_eq!(c.active, 0, "everything committed");
        }

        // Disabled flag keeps hot paths silent (board left as-is).
        sched.metrics().obs.set_enabled(false);
        let before = gauges.snapshot();
        let t3 = sched.begin(&profile_t2());
        assert!(matches!(sched.read(&t3, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.commit(&t3), CommitOutcome::Committed(_)));
        let after = gauges.snapshot();
        assert_eq!(
            after.staleness_for(1, 0).unwrap().hist.count,
            before.staleness_for(1, 0).unwrap().hist.count,
            "no recording while disabled"
        );
    }

    #[test]
    fn wall_reads_record_staleness_in_the_wall_reader_row() {
        // Branching hierarchy (1 → 0 ← 2) so an RO txn over {1, 2} is
        // off-chain and rides Protocol C.
        let h = Hierarchy::build(
            3,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
            ],
        )
        .unwrap();
        let store = Arc::new(MvStore::new());
        store.seed(g(1, 1), Value::Int(11));
        store.seed(g(2, 1), Value::Int(22));
        let sched = HddScheduler::new(
            Arc::new(h),
            store,
            Arc::new(LogicalClock::new()),
            HddConfig::default(),
        );
        sched.metrics().obs.set_enabled(true);
        assert!(sched.try_release_wall());
        let ro = sched.begin(&TxnProfile::read_only(vec![s(1), s(2)]));
        assert!(matches!(sched.read(&ro, g(1, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.read(&ro, g(2, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.commit(&ro), CommitOutcome::Committed(_)));
        let snap = sched.metrics().obs.gauges.snapshot();
        for seg in [1u32, 2] {
            let cell = snap
                .staleness_for(obs::gauges::WALL_READER, seg)
                .expect("wall-reader cell");
            assert_eq!(cell.hist.count, 1);
            assert!(cell.hist.min >= 1, "wall staleness strictly positive");
            assert_eq!(cell.reader_label(), "wall");
        }
        assert!(
            snap.staleness_for(obs::gauges::WALL_READER, 0).is_none(),
            "no wall read touched the root segment"
        );
    }

    #[test]
    fn drift_sketch_counts_arrivals_edges_and_trips_on_a_mix_shift() {
        let sched = setup(ProtocolBMode::Mvto);
        let obs = &sched.metrics().obs;
        assert!(obs.drift.snapshot().configured, "with_core dimensions it");
        obs.set_enabled(true);

        // Drift board still off: hot paths must stay silent.
        let t = sched.begin(&profile_t1());
        sched.write(&t, g(0, 1), Value::Int(1));
        assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        assert!(obs.drift.snapshot().edges.is_empty());

        obs.drift.set_enabled(true);
        // Seed phase: 16 class-0 writers — edge mass all on the (0,0)
        // diagonal; the first fold seeds the baseline and scores calm.
        for _ in 0..16 {
            let t = sched.begin(&profile_t1());
            sched.write(&t, g(0, 1), Value::Int(2));
            assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        }
        sched.refresh_drift_now();
        let s = obs.drift.snapshot();
        assert_eq!(s.folds, 1);
        assert_eq!(s.score_milli, 0, "first fold seeds, never alarms");
        assert_eq!(s.classes[0].begun, 16);
        assert_eq!(s.classes[0].committed, 16);
        assert!(s.edges.iter().any(|e| e.from == 0 && e.to == 0));

        // Shift: 16 class-1 writers that cross-read D0 — edge mass
        // moves to (1,1)/(1,0), cross-reads land in the (c1, D0) cell,
        // and the next fold must trip and trace the event.
        for _ in 0..16 {
            let t = sched.begin(&profile_t2());
            assert!(matches!(sched.read(&t, g(0, 1)), ReadOutcome::Value(_)));
            sched.write(&t, g(1, 1), Value::Int(3));
            assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
        }
        sched.refresh_drift_now();
        let s = obs.drift.snapshot();
        assert!(s.tripped, "mix shift must trip: {s:?}");
        assert_eq!(s.trips, 1);
        assert!(s.cells.iter().any(|c| c.reader == 1 && c.segment == 0));
        assert!(s.edges.iter().any(|e| e.from == 1 && e.to == 0));
        let kinds: Vec<&str> = obs.trace.drain().iter().map(|(_, e)| e.kind()).collect();
        assert!(kinds.contains(&"drift-trip"), "{kinds:?}");

        // Maintenance attributes the wall floor to a dragger class and
        // keeps folding at drift_interval cadence.
        for _ in 0..32 {
            sched.maintenance();
        }
        let s = obs.drift.snapshot();
        assert!(s.drag_class.is_some(), "a released wall names a dragger");
        let blamed: u64 = s.classes.iter().map(|c| c.drag_blame).sum();
        assert!(blamed >= 1);
        assert!(s.folds >= 4, "maintenance folds every drift_interval");
    }

    #[test]
    fn simple_write_then_cross_class_read() {
        let sched = setup(ProtocolBMode::Mvto);
        // t1 writes an event record and commits.
        let t1 = sched.begin(&profile_t1());
        assert_eq!(
            sched.write(&t1, g(0, 1), Value::Int(42)),
            WriteOutcome::Done
        );
        assert!(matches!(sched.commit(&t1), CommitOutcome::Committed(_)));

        // t2 reads the event cross-class without registration.
        let t2 = sched.begin(&profile_t2());
        match sched.read(&t2, g(0, 1)) {
            ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(42)),
            other => panic!("expected value, got {other:?}"),
        }
        assert!(matches!(sched.commit(&t2), CommitOutcome::Committed(_)));

        let m = sched.metrics().snapshot();
        assert_eq!(m.read_registrations, 0, "Protocol A never registers");
        assert_eq!(m.cross_class_reads, 1);
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn cross_class_read_hides_active_writers_versions() {
        let sched = setup(ProtocolBMode::Mvto);
        // Active t1 writes but has not committed.
        let t1 = sched.begin(&profile_t1());
        sched.write(&t1, g(0, 1), Value::Int(99));
        // A later t2 reads D0: the bound is t1's start, so it sees the
        // initial version, and never blocks.
        let t2 = sched.begin(&profile_t2());
        match sched.read(&t2, g(0, 1)) {
            ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(0)),
            other => panic!("expected initial value, got {other:?}"),
        }
        assert!(matches!(sched.commit(&t2), CommitOutcome::Committed(_)));
        assert!(matches!(sched.commit(&t1), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn own_segment_uses_protocol_b_registration() {
        let sched = setup(ProtocolBMode::Mvto);
        let t3 = sched.begin(&profile_t3());
        // Read own segment: registers.
        assert!(matches!(sched.read(&t3, g(2, 1)), ReadOutcome::Value(_)));
        assert_eq!(sched.metrics().snapshot().read_registrations, 1);
        // Cross-class reads: no registration.
        assert!(matches!(sched.read(&t3, g(1, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.read(&t3, g(0, 1)), ReadOutcome::Value(_)));
        assert_eq!(sched.metrics().snapshot().read_registrations, 1);
        assert_eq!(sched.metrics().snapshot().cross_class_reads, 2);
        assert!(matches!(sched.commit(&t3), CommitOutcome::Committed(_)));
    }

    #[test]
    fn mvto_write_rejection_forces_abort() {
        let sched = setup(ProtocolBMode::Mvto);
        // Older txn t_a begins; younger t_b reads the granule (rts = I_b);
        // then t_a's write must be rejected.
        let ta = sched.begin(&profile_t1());
        let tb = sched.begin(&profile_t1());
        assert!(matches!(sched.read(&tb, g(0, 1)), ReadOutcome::Value(_)));
        assert_eq!(
            sched.write(&ta, g(0, 1), Value::Int(1)),
            WriteOutcome::Abort
        );
        sched.abort(&ta);
        assert!(matches!(sched.commit(&tb), CommitOutcome::Committed(_)));
        let m = sched.metrics().snapshot();
        assert_eq!(m.rejections, 1);
        assert_eq!(m.aborts, 1);
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn basic_to_rejects_late_reader() {
        let sched = setup(ProtocolBMode::BasicTo);
        let ta = sched.begin(&profile_t1()); // older
        let tb = sched.begin(&profile_t1()); // younger
        assert_eq!(sched.write(&tb, g(0, 1), Value::Int(7)), WriteOutcome::Done);
        assert!(matches!(sched.commit(&tb), CommitOutcome::Committed(_)));
        // ta now reads a granule overwritten by the younger tb: reject.
        assert_eq!(sched.read(&ta, g(0, 1)), ReadOutcome::Abort);
        sched.abort(&ta);
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn read_only_on_chain_rides_protocol_a() {
        let sched = setup(ProtocolBMode::Mvto);
        let t1 = sched.begin(&profile_t1());
        sched.write(&t1, g(0, 1), Value::Int(5));
        sched.commit(&t1);

        let ro = sched.begin(&TxnProfile::read_only(vec![s(0), s(1)]));
        assert!(matches!(sched.read(&ro, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.read(&ro, g(1, 1)), ReadOutcome::Value(_)));
        assert!(matches!(sched.commit(&ro), CommitOutcome::Committed(_)));
        let m = sched.metrics().snapshot();
        assert_eq!(m.read_registrations, 0);
        assert_eq!(m.cross_class_reads, 2);
        assert_eq!(m.wall_reads, 0);
    }

    #[test]
    fn read_only_off_chain_needs_a_wall() {
        // Branching hierarchy: 1 → 0 ← 2; segments 1 and 2 off-chain.
        let h = Hierarchy::build(
            3,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
            ],
        )
        .unwrap();
        let store = Arc::new(MvStore::new());
        store.seed(g(1, 1), Value::Int(11));
        store.seed(g(2, 1), Value::Int(22));
        let sched = HddScheduler::new(
            Arc::new(h),
            store,
            Arc::new(LogicalClock::new()),
            HddConfig::default(),
        );

        // Without a wall, the read blocks.
        let ro = sched.begin(&TxnProfile::read_only(vec![s(1), s(2)]));
        assert_eq!(sched.read(&ro, g(1, 1)), ReadOutcome::Block);

        // Release a wall: the blocked reader's retry succeeds via the
        // earliest-wall liveness fallback, and transactions started
        // after the release use it directly.
        assert!(sched.try_release_wall());
        match sched.read(&ro, g(1, 1)) {
            ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(11)),
            other => panic!("expected value after wall release, got {other:?}"),
        }
        assert!(matches!(sched.commit(&ro), CommitOutcome::Committed(_)));
        let ro2 = sched.begin(&TxnProfile::read_only(vec![s(1), s(2)]));
        match sched.read(&ro2, g(1, 1)) {
            ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(11)),
            other => panic!("expected value, got {other:?}"),
        }
        match sched.read(&ro2, g(2, 1)) {
            ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(22)),
            other => panic!("expected value, got {other:?}"),
        }
        assert!(matches!(sched.commit(&ro2), CommitOutcome::Committed(_)));
        let m = sched.metrics().snapshot();
        assert_eq!(m.wall_reads, 3); // ro's post-release read + ro2's two
        assert_eq!(m.read_registrations, 0);
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    #[should_panic(expected = "violates the hierarchy")]
    fn illegal_profile_panics() {
        let sched = setup(ProtocolBMode::Mvto);
        // Class 0 (the top) may not read segment 2 (below it).
        sched.begin(&TxnProfile::update(ClassId(0), vec![s(2)]));
    }

    #[test]
    fn gc_reclaims_old_versions() {
        let sched = setup(ProtocolBMode::Mvto);
        for i in 0..20 {
            let t = sched.begin(&profile_t1());
            sched.write(&t, g(0, 1), Value::Int(i));
            sched.commit(&t);
        }
        let before = sched.store().version_count();
        let reclaimed = sched.run_gc();
        assert!(reclaimed > 0, "old versions should be reclaimed");
        assert!(sched.store().version_count() < before);
        // The latest value survives.
        assert_eq!(sched.store().latest_value(g(0, 1)), Value::Int(19));
    }

    #[test]
    fn time_slice_reads_are_cut_consistent() {
        let sched = setup(ProtocolBMode::Mvto);
        // Round 1: event + derived inventory.
        let t1 = sched.begin(&profile_t1());
        sched.write(&t1, g(0, 1), Value::Int(1));
        sched.commit(&t1);
        let t2 = sched.begin(&profile_t2());
        sched.read(&t2, g(0, 1));
        sched.write(&t2, g(1, 1), Value::Int(10));
        sched.commit(&t2);
        assert!(sched.try_release_wall());
        let wall1 = sched.walls().latest().unwrap();

        // Round 2 overwrites both.
        let t3 = sched.begin(&profile_t1());
        sched.write(&t3, g(0, 1), Value::Int(2));
        sched.commit(&t3);
        let t4 = sched.begin(&profile_t2());
        sched.read(&t4, g(0, 1));
        sched.write(&t4, g(1, 1), Value::Int(20));
        sched.commit(&t4);

        // The historical slice at wall1 still shows round 1 in BOTH
        // segments, with no transaction and no registration.
        assert_eq!(sched.read_at_wall(&wall1, g(0, 1)), Value::Int(1));
        assert_eq!(sched.read_at_wall(&wall1, g(1, 1)), Value::Int(10));
        // The present shows round 2.
        assert_eq!(sched.store().latest_value(g(1, 1)), Value::Int(20));
    }

    /// Branching hierarchy (1 → 0 ← 2) with a short watchdog lease. The
    /// branch matters: the wall component for the off-anchor branch
    /// takes a *downward* `C_late` step through the shared class 0, so a
    /// straggler there wedges wall release — the exact liveness hole the
    /// watchdog closes.
    fn setup_with_lease(lease: Duration) -> HddScheduler {
        let h = Hierarchy::build(
            3,
            &[
                AccessSpec::new("c0", vec![s(0)], vec![]),
                AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
                AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
            ],
        )
        .unwrap();
        let store = Arc::new(MvStore::new());
        store.seed(g(0, 1), Value::Int(0));
        store.seed(g(1, 1), Value::Int(0));
        store.seed(g(2, 1), Value::Int(0));
        HddScheduler::new(
            Arc::new(h),
            store,
            Arc::new(LogicalClock::new()),
            HddConfig {
                txn_lease: Some(lease),
                ..HddConfig::default()
            },
        )
    }

    #[test]
    fn watchdog_reaps_straggler_and_time_wall_resumes() {
        let sched = setup_with_lease(Duration::from_millis(1));
        sched.metrics().obs.set_enabled(true);
        // A straggler begins, writes, then stalls forever.
        let t = sched.begin(&profile_t1());
        assert_eq!(sched.write(&t, g(0, 1), Value::Int(9)), WriteOutcome::Done);
        // Later activity moves the clock past the straggler's start, so
        // a wall anchored "now" must wait on the straggler: `c_late` is
        // not computable and no wall can be released.
        let t2 = sched.begin(&profile_t2());
        assert!(matches!(sched.commit(&t2), CommitOutcome::Committed(_)));
        assert!(!sched.try_release_wall(), "wall pinned by the straggler");
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sched.reap_stragglers(), 1);
        // The registry interval is retired: the wall resumes.
        assert!(sched.try_release_wall(), "wall released after the reap");
        // The straggler's pending version was retracted.
        assert_eq!(sched.store().latest_value(g(0, 1)), Value::Int(0));
        // Its stale handle observes the abort.
        assert_eq!(sched.read(&t, g(0, 1)), ReadOutcome::Abort);
        assert!(matches!(sched.commit(&t), CommitOutcome::Aborted));
        let m = sched.metrics().snapshot();
        assert_eq!(m.rej_watchdog_abort, 1);
        assert_eq!(m.rejections, 1);
        assert_eq!(m.aborts, 1);
        let kinds: Vec<&str> = sched
            .metrics()
            .obs
            .trace
            .drain()
            .iter()
            .map(|(_, e)| e.kind())
            .collect();
        assert!(kinds.contains(&"watchdog-abort"));
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn write_after_reap_retracts_the_version() {
        let sched = setup_with_lease(Duration::from_millis(1));
        let t = sched.begin(&profile_t1());
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(sched.reap_stragglers(), 1);
        // The woken straggler tries to write: the install is retracted
        // (no orphaned pending version) and the caller told to stop.
        assert_eq!(sched.write(&t, g(0, 1), Value::Int(7)), WriteOutcome::Abort);
        assert_eq!(sched.store().latest_value(g(0, 1)), Value::Int(0));
        // A fresh transaction proceeds normally over the same granule.
        let t2 = sched.begin(&profile_t1());
        assert_eq!(sched.write(&t2, g(0, 1), Value::Int(8)), WriteOutcome::Done);
        assert!(matches!(sched.commit(&t2), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(sched.log()).is_serializable());
    }

    #[test]
    fn active_transactions_renew_their_lease() {
        let sched = setup_with_lease(Duration::from_secs(3600));
        let t = sched.begin(&profile_t1());
        assert!(matches!(sched.read(&t, g(0, 1)), ReadOutcome::Value(_)));
        // Nothing is overdue: the reap finds no one.
        assert_eq!(sched.reap_stragglers(), 0);
        assert!(matches!(sched.commit(&t), CommitOutcome::Committed(_)));
    }

    #[test]
    fn maintenance_releases_walls_periodically() {
        let sched = setup(ProtocolBMode::Mvto);
        for _ in 0..20 {
            sched.maintenance();
        }
        assert!(sched.walls().released_count() > 0);
        assert!(sched.metrics().snapshot().timewalls_released > 0);
    }
}
