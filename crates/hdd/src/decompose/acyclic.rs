//! Acyclic → TST repartitioning (Section 7.2.1).
//!
//! "Based on the theories developed for the current technique, we propose
//! to find an algorithm that will transform a database partition whose
//! data hierarchy graph is of the form of an acyclic graph to a legal
//! partition, while preserving the granularity of the original partition
//! as much as possible."
//!
//! [`repartition_to_tst`] implements a greedy contraction: while the
//! contracted graph is not a transitive semi-tree, merge the offending
//! pair of nodes —
//!
//! * nodes on a directed cycle are merged (a cycle of mutually linked
//!   segments can never be ordered, so they must share a class), and
//! * when the transitive reduction has a second undirected path between
//!   two nodes, the endpoints of the cycle-closing critical arc are
//!   merged.
//!
//! Each step strictly reduces the node count, so the loop terminates in
//! at most `n − 1` merges; a single node is trivially a TST, so the
//! result is always legal. Greedy pairwise merging keeps granularity
//! high in practice (the optimal minimum-merge partition is not required
//! by the paper and is combinatorial).

use crate::graph::{check_semi_tree, Digraph, SemiTreeViolation};
use txn_model::ClassId;

/// A segment-grouping produced by repartitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    /// For each original node (segment/class), its new class.
    pub group_of: Vec<ClassId>,
    /// Number of classes after merging.
    pub n_classes: usize,
    /// The merges performed, as pairs of original node indices
    /// (diagnostics / reporting).
    pub merges: Vec<(usize, usize)>,
    /// The contracted, now-TST class-level DHG.
    pub contracted: Digraph,
}

impl MergePlan {
    /// True if no merging was needed (already a TST).
    pub fn is_identity(&self) -> bool {
        self.merges.is_empty()
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Contract `g` by the grouping in `uf`; returns the contracted graph and
/// the dense new-index of each original node.
fn contract(g: &Digraph, uf: &mut UnionFind) -> (Digraph, Vec<usize>) {
    let n = g.node_count();
    let mut rep_to_dense: Vec<isize> = vec![-1; n];
    let mut dense = Vec::new();
    let mut index_of = vec![0usize; n];
    for (v, slot) in index_of.iter_mut().enumerate() {
        let r = uf.find(v);
        if rep_to_dense[r] < 0 {
            rep_to_dense[r] = dense.len() as isize;
            dense.push(r);
        }
        *slot = rep_to_dense[r] as usize;
    }
    let mut contracted = Digraph::new(dense.len());
    for (u, v) in g.arcs() {
        let (cu, cv) = (index_of[u], index_of[v]);
        if cu != cv {
            contracted.add_arc(cu, cv);
        }
    }
    (contracted, index_of)
}

/// Merge nodes of `dhg` until the contracted graph is a transitive
/// semi-tree. Accepts any digraph (directed cycles are merged away too,
/// so the function also legalizes cyclic DHGs arising from granule-level
/// clustering).
pub fn repartition_to_tst(dhg: &Digraph) -> MergePlan {
    repartition_to_tst_from(dhg, &[])
}

/// Like [`repartition_to_tst`], but seeded with mandatory initial merges
/// (pairs of nodes that must share a class). Dynamic restructuring uses
/// this to guarantee the new partition only *coarsens* the old one, so
/// every old class maps into exactly one new class.
pub fn repartition_to_tst_from(dhg: &Digraph, initial_merges: &[(usize, usize)]) -> MergePlan {
    let n = dhg.node_count();
    let mut uf = UnionFind::new(n);
    let mut merges = Vec::new();
    for &(a, b) in initial_merges {
        uf.union(a, b);
    }

    loop {
        let (contracted, index_of) = contract(dhg, &mut uf);
        // Directed cycles: merge the whole cycle (pairwise suffices; the
        // loop re-checks).
        if let Some(cycle) = contracted.find_cycle() {
            // Map dense indices back to original representatives.
            let originals: Vec<usize> = (0..n).filter(|&v| cycle.contains(&index_of[v])).collect();
            let first = originals[0];
            for &v in &originals[1..] {
                merges.push((first, v));
                uf.union(first, v);
            }
            continue;
        }
        let reduction = contracted.transitive_reduction();
        match check_semi_tree(&reduction) {
            Ok(()) => {
                let mut group_of = vec![ClassId(0); n];
                for v in 0..n {
                    group_of[v] = ClassId(index_of[v] as u32);
                }
                return MergePlan {
                    group_of,
                    n_classes: contracted.node_count(),
                    merges,
                    contracted,
                };
            }
            Err(SemiTreeViolation::UndirectedCycle { u, v }) => {
                // u, v are dense indices; merge any pair of originals.
                let ou = (0..n).find(|&x| index_of[x] == u).expect("nonempty group");
                let ov = (0..n).find(|&x| index_of[x] == v).expect("nonempty group");
                merges.push((ou, ov));
                uf.union(ou, ov);
            }
            Err(SemiTreeViolation::DirectedCycle(_)) => {
                unreachable!("cycle handled before reduction")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::is_transitive_semi_tree;

    #[test]
    fn tst_input_is_untouched() {
        let g = Digraph::from_arcs(3, &[(2, 1), (1, 0), (2, 0)]);
        let plan = repartition_to_tst(&g);
        assert!(plan.is_identity());
        assert_eq!(plan.n_classes, 3);
    }

    #[test]
    fn diamond_merges_one_pair() {
        // 3→1→0, 3→2→0: the diamond needs exactly one merge.
        let g = Digraph::from_arcs(4, &[(3, 1), (3, 2), (1, 0), (2, 0)]);
        let plan = repartition_to_tst(&g);
        assert!(!plan.is_identity());
        assert_eq!(plan.merges.len(), 1);
        assert_eq!(plan.n_classes, 3);
        assert!(is_transitive_semi_tree(&plan.contracted));
    }

    #[test]
    fn directed_cycle_collapses() {
        let g = Digraph::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]);
        let plan = repartition_to_tst(&g);
        assert_eq!(plan.n_classes, 1);
        assert!(plan.group_of.iter().all(|&c| c == plan.group_of[0]));
    }

    #[test]
    fn contracted_graph_is_always_tst() {
        // K2,2-ish mess plus extra arcs.
        let g = Digraph::from_arcs(
            6,
            &[
                (0, 2),
                (1, 2),
                (0, 3),
                (1, 3),
                (4, 0),
                (4, 1),
                (5, 4),
                (5, 2),
            ],
        );
        let plan = repartition_to_tst(&g);
        assert!(is_transitive_semi_tree(&plan.contracted));
        // Grouping is a function onto 0..n_classes.
        assert!(plan.group_of.iter().all(|c| (c.index()) < plan.n_classes));
        for cls in 0..plan.n_classes {
            assert!(plan.group_of.iter().any(|c| c.index() == cls));
        }
    }

    #[test]
    fn single_node_and_empty() {
        let plan = repartition_to_tst(&Digraph::new(1));
        assert!(plan.is_identity());
        assert_eq!(plan.n_classes, 1);
        let plan = repartition_to_tst(&Digraph::new(0));
        assert_eq!(plan.n_classes, 0);
    }
}
