//! Dynamic restructuring of the database decomposition (Section 7.1.1).
//!
//! "We will try to achieve a scheme which can *dynamically* restructure
//! the database partition. That is, it should be a scheme which does not
//! require a quiescence of the database activity in order to perform the
//! restructuring."
//!
//! [`AdaptiveScheduler`] wraps an [`HddScheduler`] epoch and accepts
//! *ad-hoc* transaction shapes whose access patterns are illegal under
//! the current partition. Accommodation works as follows:
//!
//! 1. A [`plan`](AdaptiveScheduler::submit_shape) is computed: the new
//!    shape is added to the spec set; the partition is **coarsened**
//!    (classes only merge, never split) with
//!    [`super::acyclic::repartition_to_tst_from`]
//!    seeded by the current grouping, so every old class maps into
//!    exactly one new class.
//! 2. Classes in the connected component(s) touched by a merge are
//!    **affected**; new update transactions in affected classes are
//!    *parked* (their operations report `Block`) until the switch.
//!    Transactions in unaffected components — and all read-only
//!    transactions — proceed undisturbed: restructuring requires no
//!    global quiescence.
//! 3. When the affected classes drain, a new scheduler epoch is created
//!    over the **same core** (store, clock, schedule log, metrics,
//!    transaction ids). The new epoch's activity registry absorbs the old
//!    epoch's histories (merged classes union their histories, which is
//!    exactly `I_old`/`C_late` of the merged class). In-flight
//!    transactions of unaffected classes keep running in the old epoch;
//!    their ends are mirrored into the new epoch's registry.
//!
//! Version garbage collection pauses while two epochs coexist (old-epoch
//! readers may hold wall floors the new epoch cannot see) and resumes
//! once the old epoch drains.

use super::acyclic::repartition_to_tst_from;
use crate::analysis::{AccessSpec, Hierarchy, HierarchyError};
use crate::protocol::{HddConfig, HddScheduler, SchedulerCore};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txn_model::{
    ClassId, CommitOutcome, GranuleId, Metrics, ReadOutcome, ScheduleLog, Scheduler, Timestamp,
    TxnHandle, TxnId, TxnProfile, Value, WriteOutcome,
};

/// Where a transaction's operations are routed.
enum Route {
    /// Runs in an epoch with the given inner handle.
    Inner(Arc<HddScheduler>, TxnHandle),
    /// Parked until the pending switch completes.
    Parked(TxnProfile),
}

/// A pending restructure.
struct PendingSwitch {
    new_specs: Vec<AccessSpec>,
    new_group_of: Vec<ClassId>,
    new_n_classes: usize,
    new_hierarchy: Arc<Hierarchy>,
    /// Old classes that must drain before the switch.
    affected_old_classes: Vec<ClassId>,
    /// Map old class → new class.
    class_map: Vec<ClassId>,
}

struct Epochs {
    current: Arc<HddScheduler>,
    /// The previous epoch while its transactions drain, with its
    /// old-class → new-class map for registry mirroring.
    old: Option<(Arc<HddScheduler>, Vec<ClassId>)>,
    pending: Option<PendingSwitch>,
    /// Segment-level spec set in force.
    specs: Vec<AccessSpec>,
    /// Current grouping of segments into classes.
    group_of: Vec<ClassId>,
    n_classes: usize,
}

/// An HDD scheduler that accommodates ad-hoc transaction shapes by
/// dynamically coarsening the partition.
pub struct AdaptiveScheduler {
    core: SchedulerCore,
    config: HddConfig,
    n_segments: usize,
    epochs: RwLock<Epochs>,
    routes: Mutex<HashMap<TxnId, Route>>,
    maintenance_calls: AtomicU64,
}

/// Errors from [`AdaptiveScheduler::submit_shape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestructureError {
    /// A previous restructure is still in progress or draining.
    Busy,
    /// The shape (or combined spec set) cannot form a hierarchy at all.
    Invalid(HierarchyError),
}

impl AdaptiveScheduler {
    /// Build over the identity partition of `n_segments` validated from
    /// `specs`.
    pub fn new(
        n_segments: usize,
        specs: Vec<AccessSpec>,
        core: SchedulerCore,
        config: HddConfig,
    ) -> Result<Self, HierarchyError> {
        let hierarchy = Arc::new(Hierarchy::build(n_segments, &specs)?);
        let group_of: Vec<ClassId> = (0..n_segments as u32).map(ClassId).collect();
        let n_classes = n_segments;
        let current = Arc::new(HddScheduler::with_core(
            hierarchy,
            core.clone(),
            config.clone(),
        ));
        Ok(AdaptiveScheduler {
            core,
            config,
            n_segments,
            epochs: RwLock::new(Epochs {
                current,
                old: None,
                pending: None,
                specs,
                group_of,
                n_classes,
            }),
            routes: Mutex::new(HashMap::new()),
            maintenance_calls: AtomicU64::new(0),
        })
    }

    /// The hierarchy currently in force.
    pub fn current_hierarchy(&self) -> Arc<Hierarchy> {
        Arc::new(self.epochs.read().current.hierarchy().clone())
    }

    /// The current epoch scheduler (tests/diagnostics).
    pub fn current_epoch(&self) -> Arc<HddScheduler> {
        Arc::clone(&self.epochs.read().current)
    }

    /// True while a switch is pending or an old epoch is draining.
    pub fn is_restructuring(&self) -> bool {
        let e = self.epochs.read();
        e.pending.is_some() || e.old.is_some()
    }

    /// Submit an ad-hoc transaction shape. If it is already legal,
    /// returns `Ok(false)` (no restructure needed). Otherwise computes a
    /// coarsened partition and schedules the switch, returning
    /// `Ok(true)`; the switch completes during [`Scheduler::maintenance`]
    /// once affected classes drain.
    pub fn submit_shape(&self, shape: AccessSpec) -> Result<bool, RestructureError> {
        let mut e = self.epochs.write();
        if e.pending.is_some() || e.old.is_some() {
            return Err(RestructureError::Busy);
        }

        // Already legal? Check the shape as a profile-like spec: all its
        // writes in one class, reads in that class or above.
        let legal = {
            let h = e.current.hierarchy();
            let mut wc: Vec<ClassId> = shape.writes.iter().map(|w| h.class_of(*w)).collect();
            wc.sort_unstable();
            wc.dedup();
            wc.len() == 1
                && shape.reads.iter().all(|r| {
                    let rc = h.class_of(*r);
                    rc == wc[0] || h.higher_than(rc, wc[0])
                })
        };
        if legal {
            e.specs.push(shape);
            return Ok(false);
        }

        // Coarsen: seed the repartition with the current grouping.
        let mut new_specs = e.specs.clone();
        new_specs.push(shape);
        let dhg = crate::analysis::build_dhg(self.n_segments, &new_specs);
        let mut seed: Vec<(usize, usize)> = Vec::new();
        for a in 0..self.n_segments {
            for b in a + 1..self.n_segments {
                if e.group_of[a] == e.group_of[b] {
                    seed.push((a, b));
                }
            }
        }
        let plan = repartition_to_tst_from(&dhg, &seed);
        let new_hierarchy = Arc::new(
            Hierarchy::build_grouped(
                self.n_segments,
                &new_specs,
                plan.group_of.clone(),
                plan.n_classes,
            )
            .map_err(RestructureError::Invalid)?,
        );

        // Old class → new class (coarsening guarantees uniqueness).
        let mut class_map = vec![ClassId(0); e.n_classes];
        for s in 0..self.n_segments {
            class_map[e.group_of[s].index()] = plan.group_of[s];
        }

        // Affected old classes: those in the old connected component(s)
        // of any class that is merged with another.
        let merged_new: Vec<ClassId> = (0..plan.n_classes as u32)
            .map(ClassId)
            .filter(|nc| class_map.iter().filter(|&&m| m == *nc).count() > 1)
            .collect();
        let old_paths = e.current.hierarchy().paths().clone();
        let affected: Vec<ClassId> = (0..e.n_classes)
            .filter(|&oc| {
                let nc = class_map[oc];
                merged_new.contains(&nc)
                    || (0..e.n_classes).any(|other| {
                        merged_new.contains(&class_map[other])
                            && old_paths.undirected_critical_path(oc, other).is_some()
                    })
            })
            .map(|i| ClassId(i as u32))
            .collect();

        e.pending = Some(PendingSwitch {
            new_specs,
            new_group_of: plan.group_of,
            new_n_classes: plan.n_classes,
            new_hierarchy,
            affected_old_classes: affected,
            class_map,
        });
        Ok(true)
    }

    /// Attempt the pending switch; returns true if it happened.
    pub fn try_switch(&self) -> bool {
        let mut e = self.epochs.write();
        let Some(pending) = &e.pending else {
            return false;
        };
        // Affected classes must have drained in the current epoch.
        if pending
            .affected_old_classes
            .iter()
            .any(|&c| e.current.registry().class_has_running(c))
        {
            return false;
        }
        let pending = e.pending.take().expect("checked above");
        let new_sched = Arc::new(HddScheduler::with_core(
            Arc::clone(&pending.new_hierarchy),
            self.core.clone(),
            self.config.clone(),
        ));
        // Registry hand-off: merged classes union their histories.
        for oc in 0..e.n_classes {
            let intervals = e.current.registry().export_class(ClassId(oc as u32));
            new_sched
                .registry()
                .absorb_class(pending.class_map[oc], &intervals);
        }
        let old = std::mem::replace(&mut e.current, new_sched);
        e.old = Some((old, pending.class_map));
        e.specs = pending.new_specs;
        e.group_of = pending.new_group_of;
        e.n_classes = pending.new_n_classes;
        true
    }

    /// Resolve the profile's class against a hierarchy by its write
    /// segments (class ids are epoch-relative, so the caller's `class`
    /// field is recomputed).
    fn effective_profile(h: &Hierarchy, profile: &TxnProfile) -> TxnProfile {
        if profile.is_read_only() {
            return TxnProfile::read_only(profile.read_segments.clone());
        }
        let class = h.class_of(profile.write_segments[0]);
        TxnProfile {
            class: Some(class),
            read_segments: profile.read_segments.clone(),
            write_segments: profile.write_segments.clone(),
        }
    }

    /// Whether the profile targets a class that must wait for the switch.
    fn is_parked_profile(e: &Epochs, profile: &TxnProfile) -> bool {
        let Some(pending) = &e.pending else {
            return false;
        };
        if profile.is_read_only() {
            return false;
        }
        let oc = e.current.hierarchy().class_of(profile.write_segments[0]);
        pending.affected_old_classes.contains(&oc)
    }

    /// Try to un-park: begin the transaction in the current epoch.
    /// Returns the inner pair if successful, None if still parked.
    fn resolve_route(&self, id: TxnId) -> Option<(Arc<HddScheduler>, TxnHandle)> {
        let mut routes = self.routes.lock();
        match routes.get(&id) {
            Some(Route::Inner(s, h)) => Some((Arc::clone(s), h.clone())),
            Some(Route::Parked(profile)) => {
                let e = self.epochs.read();
                if Self::is_parked_profile(&e, profile) {
                    return None;
                }
                let sched = Arc::clone(&e.current);
                let eff = Self::effective_profile(sched.hierarchy(), profile);
                drop(e);
                let inner = sched.begin(&eff);
                routes.insert(id, Route::Inner(Arc::clone(&sched), inner.clone()));
                Some((sched, inner))
            }
            None => None,
        }
    }

    /// Mirror a finished old-epoch transaction into the current epoch's
    /// registry.
    fn mirror_end_if_old(
        &self,
        sched: &Arc<HddScheduler>,
        h: &TxnHandle,
        end: Timestamp,
        committed: bool,
    ) {
        let e = self.epochs.read();
        if let Some((old, class_map)) = &e.old {
            if Arc::ptr_eq(old, sched) {
                if let Some(class) = h.class {
                    e.current.registry().mirror_end(
                        class_map[class.index()],
                        h.start_ts,
                        end,
                        committed,
                    );
                }
            }
        }
    }
}

impl Scheduler for AdaptiveScheduler {
    fn name(&self) -> &'static str {
        "hdd-adaptive"
    }

    fn begin(&self, profile: &TxnProfile) -> TxnHandle {
        let e = self.epochs.read();
        if Self::is_parked_profile(&e, profile) {
            // Parked: hand out a provisional handle; the real begin
            // happens after the switch.
            // ordering: Relaxed — id uniqueness from fetch_add atomicity;
            // nothing else is published through the id counter.
            let id = TxnId(self.core.txn_ids.fetch_add(1, Ordering::Relaxed));
            let start = self.core.clock.tick();
            drop(e);
            self.routes
                .lock()
                .insert(id, Route::Parked(profile.clone()));
            return TxnHandle {
                id,
                start_ts: start,
                class: None,
            };
        }
        let sched = Arc::clone(&e.current);
        let eff = Self::effective_profile(sched.hierarchy(), profile);
        drop(e);
        let inner = sched.begin(&eff);
        self.routes
            .lock()
            .insert(inner.id, Route::Inner(sched, inner.clone()));
        inner
    }

    fn read(&self, h: &TxnHandle, g: GranuleId) -> ReadOutcome {
        match self.resolve_route(h.id) {
            Some((sched, inner)) => sched.read(&inner, g),
            None => {
                Metrics::bump(&self.core.metrics.blocks);
                ReadOutcome::Block
            }
        }
    }

    fn write(&self, h: &TxnHandle, g: GranuleId, v: Value) -> WriteOutcome {
        match self.resolve_route(h.id) {
            Some((sched, inner)) => sched.write(&inner, g, v),
            None => {
                Metrics::bump(&self.core.metrics.blocks);
                WriteOutcome::Block
            }
        }
    }

    fn commit(&self, h: &TxnHandle) -> CommitOutcome {
        match self.resolve_route(h.id) {
            Some((sched, inner)) => {
                let out = sched.commit(&inner);
                if let CommitOutcome::Committed(cts) = out {
                    self.mirror_end_if_old(&sched, &inner, cts, true);
                }
                if !matches!(out, CommitOutcome::Block) {
                    self.routes.lock().remove(&h.id);
                }
                out
            }
            None => {
                // Parked transaction that never ran: commit it as an
                // empty transaction.
                self.routes.lock().remove(&h.id);
                CommitOutcome::Committed(self.core.clock.tick())
            }
        }
    }

    fn abort(&self, h: &TxnHandle) {
        if let Some(Route::Inner(sched, inner)) = self.routes.lock().remove(&h.id) {
            sched.abort(&inner);
            let end = self.core.clock.now();
            self.mirror_end_if_old(&sched, &inner, end, false);
        }
    }

    fn maintenance(&self) {
        // Drop a drained old epoch.
        {
            let mut e = self.epochs.write();
            let drained = match &e.old {
                Some((old, _)) => {
                    let routes = self.routes.lock();
                    !routes
                        .values()
                        .any(|r| matches!(r, Route::Inner(s, _) if Arc::ptr_eq(s, old)))
                }
                None => false,
            };
            if drained {
                e.old = None;
            }
        }
        self.try_switch();

        // ordering: Relaxed — private cadence counter for interval gating.
        let n = self.maintenance_calls.fetch_add(1, Ordering::Relaxed) + 1;
        let e = self.epochs.read();
        if self.config.wall_interval > 0 && n.is_multiple_of(self.config.wall_interval) {
            e.current.try_release_wall();
        }
        // GC pauses while epochs coexist (see module docs).
        if self.config.gc_interval > 0
            && n.is_multiple_of(self.config.gc_interval)
            && e.old.is_none()
            && e.pending.is_none()
        {
            e.current.run_gc();
        }
    }

    fn log(&self) -> &ScheduleLog {
        &self.core.log
    }

    fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvstore::MvStore;
    use txn_model::{DependencyGraph, LogicalClock, SegmentId};

    fn s(i: u32) -> SegmentId {
        SegmentId(i)
    }

    fn g(seg: u32, key: u64) -> GranuleId {
        GranuleId::new(s(seg), key)
    }

    /// Tree hierarchy: 3 → 1 → 0 ← 2 (class 3 below 1; 2 a sibling
    /// branch). The ad-hoc shape `writes 3, reads 2` turns the reduction
    /// into a diamond (3 → {1,2} → 0), which forces a class merge.
    fn adaptive() -> AdaptiveScheduler {
        let specs = vec![
            AccessSpec::new("c0", vec![s(0)], vec![]),
            AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
            AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
            AccessSpec::new("c3", vec![s(3)], vec![s(1), s(0)]),
        ];
        let store = Arc::new(MvStore::new());
        for seg in 0..4 {
            store.seed(g(seg, 1), Value::Int(seg as i64));
        }
        let core = SchedulerCore::new(store, Arc::new(LogicalClock::new()));
        AdaptiveScheduler::new(4, specs, core, HddConfig::default()).unwrap()
    }

    /// The diamond-forcing ad-hoc shape.
    fn cross_shape() -> AccessSpec {
        AccessSpec::new("cross", vec![s(3)], vec![s(2), s(1), s(0)])
    }

    fn update_profile(write_seg: u32, reads: Vec<SegmentId>) -> TxnProfile {
        TxnProfile {
            class: Some(ClassId(write_seg)), // recomputed internally
            read_segments: reads,
            write_segments: vec![s(write_seg)],
        }
    }

    #[test]
    fn legal_shape_needs_no_restructure() {
        let a = adaptive();
        let shape = AccessSpec::new("another-c1", vec![s(1)], vec![s(0), s(1)]);
        assert_eq!(a.submit_shape(shape), Ok(false));
        assert!(!a.is_restructuring());
    }

    #[test]
    fn illegal_shape_triggers_merge_and_switch() {
        let a = adaptive();
        assert_eq!(a.submit_shape(cross_shape()), Ok(true));
        assert!(a.is_restructuring());
        // Nothing running: switch succeeds immediately.
        assert!(a.try_switch());
        let h = a.current_hierarchy();
        // The diamond is resolved by a merge (greedy pairing merges the
        // endpoints of the cycle-closing critical arc).
        assert!(h.class_count() < 4);
        // The ad-hoc shape now validates.
        let p = TxnProfile {
            class: Some(h.class_of(s(3))),
            read_segments: vec![s(2), s(1), s(0)],
            write_segments: vec![s(3)],
        };
        assert!(h.validate_profile(&p).is_ok());
    }

    #[test]
    fn arc_only_legalization_needs_no_merge() {
        // Siblings 1 ← 0 → ... a shape writing 1 and reading 2 merely
        // adds the arc 1 → 2, which keeps the DHG a TST: the partition
        // switches but no classes merge.
        let specs = vec![
            AccessSpec::new("c0", vec![s(0)], vec![]),
            AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
            AccessSpec::new("c2", vec![s(2)], vec![s(0)]),
        ];
        let store = Arc::new(MvStore::new());
        let core = SchedulerCore::new(store, Arc::new(LogicalClock::new()));
        let a = AdaptiveScheduler::new(3, specs, core, HddConfig::default()).unwrap();
        let shape = AccessSpec::new("chain", vec![s(1)], vec![s(2), s(0)]);
        assert_eq!(a.submit_shape(shape), Ok(true));
        assert!(a.try_switch());
        let h = a.current_hierarchy();
        assert_eq!(h.class_count(), 3);
        // Class 2 is now higher than class 1.
        assert!(h.higher_than(h.class_of(s(2)), h.class_of(s(1))));
    }

    #[test]
    fn switch_waits_for_affected_class_drain() {
        let a = adaptive();
        // Start an update txn in class 1 (affected by the coming merge).
        let t = a.begin(&update_profile(1, vec![s(0)]));
        assert_eq!(a.write(&t, g(1, 1), Value::Int(5)), WriteOutcome::Done);

        assert_eq!(a.submit_shape(cross_shape()), Ok(true));
        // Can't switch while t runs in class 1.
        assert!(!a.try_switch());
        assert!(matches!(a.commit(&t), CommitOutcome::Committed(_)));
        assert!(a.try_switch());
        assert!(DependencyGraph::from_log(a.log()).is_serializable());
    }

    #[test]
    fn parked_transactions_resume_after_switch() {
        let a = adaptive();
        // A long-running txn in class 1 delays the switch.
        let blocker = a.begin(&update_profile(1, vec![s(0)]));
        a.write(&blocker, g(1, 1), Value::Int(1));
        assert_eq!(a.submit_shape(cross_shape()), Ok(true));

        // New class-1 txn parks: ops block.
        let parked = a.begin(&update_profile(1, vec![s(0)]));
        assert_eq!(a.read(&parked, g(0, 1)), ReadOutcome::Block);

        // Unaffected read-only work proceeds during the pending switch.
        let ro = a.begin(&TxnProfile::read_only(vec![s(0)]));
        assert!(matches!(a.read(&ro, g(0, 1)), ReadOutcome::Value(_)));
        assert!(matches!(a.commit(&ro), CommitOutcome::Committed(_)));

        // Drain, switch, and the parked txn resumes.
        assert!(matches!(a.commit(&blocker), CommitOutcome::Committed(_)));
        a.maintenance(); // performs the switch
        assert!(matches!(a.read(&parked, g(0, 1)), ReadOutcome::Value(_)));
        assert_eq!(a.write(&parked, g(1, 1), Value::Int(2)), WriteOutcome::Done);
        assert!(matches!(a.commit(&parked), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(a.log()).is_serializable());
    }

    #[test]
    fn old_epoch_transactions_finish_and_mirror() {
        let a = adaptive();
        // Class 2 txn is unaffected? No — merging 1 and 2 affects the
        // whole component here. Use a 4-segment layout instead: two
        // disjoint components.
        let specs = vec![
            AccessSpec::new("c0", vec![s(0)], vec![]),
            AccessSpec::new("c1", vec![s(1)], vec![s(0)]),
            AccessSpec::new("c2", vec![s(2)], vec![]),
            AccessSpec::new("c3", vec![s(3)], vec![s(2)]),
        ];
        let store = Arc::new(MvStore::new());
        for seg in 0..4 {
            store.seed(g(seg, 1), Value::Int(0));
        }
        let core = SchedulerCore::new(store, Arc::new(LogicalClock::new()));
        let a2 = AdaptiveScheduler::new(4, specs, core, HddConfig::default()).unwrap();
        drop(a);

        // Long-runner in the {2,3} component (unaffected by a {0,1}
        // merge).
        let unaffected = a2.begin(&update_profile(3, vec![s(2)]));
        a2.write(&unaffected, g(3, 1), Value::Int(9));

        // Merge classes 0 and 1 via an ad-hoc shape writing into 0 while
        // reading 1 (0 is above 1? arcs: 1 → 0, so 0 is higher; a shape
        // writing 0 and reading 1 reads BELOW its class: illegal).
        assert_eq!(
            a2.submit_shape(AccessSpec::new("down-read", vec![s(0)], vec![s(1)])),
            Ok(true)
        );
        // The {2,3} component keeps running; switch happens right away
        // because only {0,1} must drain and it is idle.
        assert!(a2.try_switch());
        assert!(a2.is_restructuring()); // old epoch still draining

        // The unaffected txn commits in the old epoch and is mirrored.
        assert!(matches!(
            a2.commit(&unaffected),
            CommitOutcome::Committed(_)
        ));
        a2.maintenance();
        assert!(!a2.is_restructuring());

        // New work proceeds under the merged hierarchy.
        let h = a2.current_hierarchy();
        assert_eq!(h.class_of(s(0)), h.class_of(s(1)));
        let t = a2.begin(&TxnProfile {
            class: Some(h.class_of(s(0))),
            read_segments: vec![s(1)],
            write_segments: vec![s(0)],
        });
        assert!(matches!(a2.read(&t, g(1, 1)), ReadOutcome::Value(_)));
        assert_eq!(a2.write(&t, g(0, 1), Value::Int(1)), WriteOutcome::Done);
        assert!(matches!(a2.commit(&t), CommitOutcome::Committed(_)));
        assert!(DependencyGraph::from_log(a2.log()).is_serializable());
    }

    #[test]
    fn second_restructure_allowed_after_drain() {
        let a = adaptive();
        assert_eq!(a.submit_shape(cross_shape()), Ok(true));
        assert!(a.try_switch());
        a.maintenance(); // drops the drained old epoch
        assert!(!a.is_restructuring());
        // A further coarsening: the top class writing segment 0 while
        // reading segment 1 reads *below* itself — a directed cycle that
        // only a merge resolves.
        let again = a.submit_shape(AccessSpec::new("again", vec![s(0)], vec![s(1)]));
        assert_eq!(again, Ok(true));
        assert!(a.try_switch());
        let h = a.current_hierarchy();
        assert_eq!(h.class_of(s(0)), h.class_of(s(1)));
        assert!(DependencyGraph::from_log(a.log()).is_serializable());
    }

    #[test]
    fn busy_while_pending() {
        let a = adaptive();
        let blocker = a.begin(&update_profile(1, vec![s(0)]));
        a.write(&blocker, g(1, 1), Value::Int(1));
        assert_eq!(a.submit_shape(cross_shape()), Ok(true));
        assert_eq!(
            a.submit_shape(AccessSpec::new("y", vec![s(2)], vec![s(1)])),
            Err(RestructureError::Busy)
        );
        a.abort(&blocker);
    }
}
