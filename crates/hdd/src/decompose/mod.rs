//! Section 7 extensions, implemented: acyclic → TST repartitioning
//! (7.2.1), decomposition methodology via data analysis (7.2.2), and
//! dynamic restructuring of the database decomposition (7.1.1).

pub mod acyclic;
pub mod cluster;
pub mod dynamic;

pub use acyclic::{repartition_to_tst, repartition_to_tst_from, MergePlan};
pub use cluster::{decompose, Decomposition, ItemAccess};
pub use dynamic::{AdaptiveScheduler, RestructureError};
