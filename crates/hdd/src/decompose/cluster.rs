//! Database decomposition via data analysis (Section 7.2.2).
//!
//! "We propose to study in detail graph-theoretic methodologies that can
//! be used to cluster data elements of a database to arrive at a legal or
//! an acyclic decomposition of the database."
//!
//! [`decompose`] starts from *item-level* access observations (which raw
//! items each transaction shape reads and writes) and derives a legal
//! TST-hierarchical partition:
//!
//! 1. **Write clustering** — items co-written by one transaction shape
//!    must share a segment (a TST-hierarchical partition allows each
//!    update transaction exactly one written segment), so the write sets
//!    are unioned with a union-find.
//! 2. **Hierarchy graph** — the segment-level DHG is built from the
//!    clustered shapes.
//! 3. **Legalization** — directed cycles and semi-tree violations are
//!    merged away by [`super::acyclic::repartition_to_tst`].
//!
//! The result maps every item to a [`SegmentId`] and provides the
//! validated [`Hierarchy`] plus the segment-level [`AccessSpec`]s.

use super::acyclic::repartition_to_tst;
use crate::analysis::{AccessSpec, Hierarchy, HierarchyError};
use crate::graph::Digraph;
use std::collections::HashMap;
use txn_model::{ClassId, GranuleId, SegmentId};

/// Item-level access pattern of one transaction shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemAccess {
    /// Shape name.
    pub name: String,
    /// Raw item ids written.
    pub writes: Vec<u64>,
    /// Raw item ids read.
    pub reads: Vec<u64>,
}

impl ItemAccess {
    /// Build an item-level access pattern.
    pub fn new(name: impl Into<String>, writes: Vec<u64>, reads: Vec<u64>) -> Self {
        ItemAccess {
            name: name.into(),
            writes,
            reads,
        }
    }
}

/// A derived partition: item → segment map plus the validated hierarchy.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Segment assigned to each observed item.
    pub segment_of_item: HashMap<u64, SegmentId>,
    /// The validated hierarchy over the derived segments.
    pub hierarchy: Hierarchy,
    /// Segment-level access specs corresponding to the input shapes.
    pub specs: Vec<AccessSpec>,
}

impl Decomposition {
    /// The granule id of `item` under this decomposition.
    pub fn granule(&self, item: u64) -> GranuleId {
        GranuleId::new(self.segment_of_item[&item], item)
    }

    /// The class that writes `item`.
    pub fn class_of_item(&self, item: u64) -> ClassId {
        self.hierarchy.class_of(self.segment_of_item[&item])
    }
}

struct UnionFind {
    parent: HashMap<u64, u64>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let r = self.find(p);
        self.parent.insert(x, r);
        r
    }

    fn union(&mut self, a: u64, b: u64) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Derive a legal TST-hierarchical partition from item-level access
/// observations.
///
/// Errors only if some shape writes nothing (pass read-only shapes to the
/// scheduler as read-only transactions instead).
pub fn decompose(accesses: &[ItemAccess]) -> Result<Decomposition, HierarchyError> {
    // 1. Union co-written items.
    let mut uf = UnionFind::new();
    for a in accesses {
        if a.writes.is_empty() {
            return Err(HierarchyError::SpecWritesNothing {
                spec: a.name.clone(),
            });
        }
        uf.find(a.writes[0]);
        for w in &a.writes[1..] {
            uf.union(a.writes[0], *w);
        }
        // Touch reads so read-only items get segments too.
        for r in &a.reads {
            uf.find(*r);
        }
    }

    // 2. Dense preliminary segment ids per union-find root.
    let items: Vec<u64> = {
        let mut v: Vec<u64> = uf.parent.keys().copied().collect();
        v.sort_unstable();
        v
    };
    let mut seg_of_root: HashMap<u64, u32> = HashMap::new();
    let mut prelim: HashMap<u64, SegmentId> = HashMap::new();
    for &item in &items {
        let root = uf.find(item);
        let next = seg_of_root.len() as u32;
        let seg = *seg_of_root.entry(root).or_insert(next);
        prelim.insert(item, SegmentId(seg));
    }
    let n_prelim = seg_of_root.len();

    // 3. Preliminary segment-level specs and DHG.
    let mut specs: Vec<AccessSpec> = Vec::with_capacity(accesses.len());
    for a in accesses {
        let mut writes: Vec<SegmentId> = a.writes.iter().map(|i| prelim[i]).collect();
        writes.sort_unstable();
        writes.dedup();
        let mut reads: Vec<SegmentId> = a.reads.iter().map(|i| prelim[i]).collect();
        reads.sort_unstable();
        reads.dedup();
        specs.push(AccessSpec::new(a.name.clone(), writes, reads));
    }
    let mut dhg = Digraph::new(n_prelim);
    for spec in &specs {
        let accesses = spec.accesses();
        for &w in &spec.writes {
            for &acc in &accesses {
                if w != acc {
                    dhg.add_arc(w.index(), acc.index());
                }
            }
        }
    }

    // 4. Legalize by merging.
    let plan = repartition_to_tst(&dhg);
    let hierarchy =
        Hierarchy::build_grouped(n_prelim, &specs, plan.group_of.clone(), plan.n_classes)?;

    Ok(Decomposition {
        segment_of_item: prelim,
        hierarchy,
        specs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_like_items_decompose_to_a_chain() {
        // Items 1..=3: event log; 10: inventory level; 20: on-order.
        let acc = vec![
            ItemAccess::new("log-sale", vec![1], vec![]),
            ItemAccess::new("log-arrival", vec![2], vec![]),
            ItemAccess::new("log-mod", vec![3], vec![]),
            ItemAccess::new("post-inventory", vec![10], vec![1, 2, 3]),
            ItemAccess::new("reorder", vec![20], vec![2, 10, 20]),
        ];
        let d = decompose(&acc).unwrap();
        // Items 1, 2, 3 were never co-written: they stay separate
        // segments, but all sit in classes below the inventory class.
        let c10 = d.class_of_item(10);
        let c20 = d.class_of_item(20);
        for ev in [1u64, 2, 3] {
            let ce = d.class_of_item(ev);
            assert!(
                d.hierarchy.higher_than(ce, c10) || ce == c10,
                "event item {ev} must be readable from the inventory class"
            );
        }
        assert!(d.hierarchy.higher_than(c10, c20));
    }

    #[test]
    fn co_written_items_share_a_segment() {
        let acc = vec![ItemAccess::new("w", vec![5, 6, 7], vec![])];
        let d = decompose(&acc).unwrap();
        let s5 = d.segment_of_item[&5];
        assert_eq!(d.segment_of_item[&6], s5);
        assert_eq!(d.segment_of_item[&7], s5);
        assert_eq!(d.granule(5).segment, s5);
        assert_eq!(d.granule(5).key, 5);
    }

    #[test]
    fn mutual_readers_end_up_merged() {
        // a writes 1 reads 2; b writes 2 reads 1 → directed cycle →
        // merged into one class.
        let acc = vec![
            ItemAccess::new("a", vec![1], vec![2]),
            ItemAccess::new("b", vec![2], vec![1]),
        ];
        let d = decompose(&acc).unwrap();
        assert_eq!(d.class_of_item(1), d.class_of_item(2));
        assert_eq!(d.hierarchy.class_count(), 1);
    }

    #[test]
    fn writeless_shape_rejected() {
        let acc = vec![ItemAccess::new("ro", vec![], vec![1])];
        assert!(matches!(
            decompose(&acc),
            Err(HierarchyError::SpecWritesNothing { .. })
        ));
    }

    #[test]
    fn derived_hierarchy_validates_shapes() {
        use txn_model::TxnProfile;
        let acc = vec![
            ItemAccess::new("base", vec![1], vec![]),
            ItemAccess::new("derived", vec![2], vec![1]),
        ];
        let d = decompose(&acc).unwrap();
        let class = d.class_of_item(2);
        let p = TxnProfile {
            class: Some(class),
            read_segments: vec![d.segment_of_item[&1]],
            write_segments: vec![d.segment_of_item[&2]],
        };
        assert!(d.hierarchy.validate_profile(&p).is_ok());
    }
}
