//! # hdd — Hierarchical Database Decomposition concurrency control
//!
//! A faithful implementation of Meichun Hsu's *Hierarchical Database
//! Decomposition* technique (MIT INFOPLEX TR #12, 1982 / PODS 1983): a
//! multi-version, timestamp-based concurrency control that uses a priori
//! transaction analysis to eliminate read locks and read timestamps for
//! cross-class and read-only reads.
//!
//! ## Layers
//!
//! * [`graph`] — Section 3.1: digraphs, transitive closure/reduction,
//!   semi-trees, transitive semi-trees, critical paths, undirected
//!   critical paths and the `higher-than` partial order.
//! * [`analysis`] — Section 3.2: transaction access specs → data hierarchy
//!   graph → validated TST-hierarchical [`Hierarchy`] and transaction
//!   classification.
//! * [`activity`] — Sections 4.1/5.1: per-class activity histories and
//!   the `I_old`, `C_late`, `A`, `B`, `E` functions, plus the `⇒`
//!   (*topologically follows*) relation checker.
//! * [`timewall`] — Section 5.1/5.2: time walls for ad-hoc read-only
//!   transactions.
//! * [`protocol`] — Sections 4.2/5.2: the [`HddScheduler`] implementing
//!   Protocols A, B and C behind the common
//!   [`Scheduler`](txn_model::Scheduler) interface.
//! * [`decompose`] — Section 7 (future work, implemented here): acyclic →
//!   TST repartitioning, granule-clustering decomposition methodology,
//!   and dynamic restructuring for ad-hoc transactions.
//!
//! ## Quick example
//!
//! ```
//! use hdd::analysis::{AccessSpec, Hierarchy};
//! use hdd::protocol::{HddConfig, HddScheduler};
//! use mvstore::MvStore;
//! use std::sync::Arc;
//! use txn_model::{
//!     ClassId, GranuleId, LogicalClock, ReadOutcome, Scheduler, SegmentId, TxnProfile, Value,
//! };
//!
//! // Two segments: events (D0) written by class 0, inventory (D1)
//! // written by class 1 which also reads D0.
//! let s = SegmentId;
//! let hierarchy = Hierarchy::build(
//!     2,
//!     &[
//!         AccessSpec::new("log-event", vec![s(0)], vec![]),
//!         AccessSpec::new("post-inventory", vec![s(1)], vec![s(0)]),
//!     ],
//! )
//! .unwrap();
//!
//! let store = Arc::new(MvStore::new());
//! store.seed(GranuleId::new(s(0), 1), Value::Int(7));
//! let sched = HddScheduler::new(
//!     Arc::new(hierarchy),
//!     store,
//!     Arc::new(LogicalClock::new()),
//!     HddConfig::default(),
//! );
//!
//! let t = sched.begin(&TxnProfile::update(ClassId(1), vec![s(0)]));
//! // Cross-class read: served without any read registration.
//! match sched.read(&t, GranuleId::new(s(0), 1)) {
//!     ReadOutcome::Value(v) => assert_eq!(*v, Value::Int(7)),
//!     other => panic!("{other:?}"),
//! }
//! sched.commit(&t);
//! assert_eq!(sched.metrics().snapshot().read_registrations, 0);
//! ```

#![warn(missing_docs)]

pub mod activity;
pub mod analysis;
pub mod decompose;
pub mod graph;
pub mod protocol;
pub mod recovery;
pub mod timewall;

pub use analysis::{AccessSpec, Hierarchy, HierarchyError};
pub use protocol::{HddConfig, HddScheduler, ProtocolBMode};
pub use recovery::{resume, ResumeReport};
pub use timewall::{TimeWall, TimeWallService};
