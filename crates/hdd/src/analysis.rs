//! Transaction analysis (Section 3.2): from declared transaction access
//! patterns to a validated TST-hierarchical partition.
//!
//! * [`AccessSpec`] — one *potential transaction shape* `t`: its write set
//!   `w(t)` and read set `r(t)` at segment granularity.
//! * [`build_dhg`] — the **data hierarchy graph**: `D_i → D_j` iff some
//!   spec has `w(t) ∩ D_i ≠ ∅` and `a(t) ∩ D_j ≠ ∅` (`a = r ∪ w`).
//! * [`Hierarchy`] — the validated partition: DHG is a transitive
//!   semi-tree; every update transaction writes inside exactly one class
//!   root; the transaction hierarchy graph THG is the image of the DHG.
//!
//! ## Grouped partitions
//!
//! The paper's partition `P` divides the database into data segments; the
//! decomposition algorithms of Section 7 *coarsen* a partition by merging
//! segments. [`Hierarchy`] therefore distinguishes **segments** (stable
//! physical ids carried by granules) from **classes** (nodes of the
//! DHG/THG): a class roots a *group* of segments. [`Hierarchy::build`]
//! produces the identity grouping (one class per segment);
//! [`Hierarchy::build_grouped`] accepts an explicit grouping, which is
//! what [`crate::decompose`] emits.

use crate::graph::{check_transitive_semi_tree, Digraph, PathTables, SemiTreeViolation};
use txn_model::{ClassId, SegmentId, TxnProfile};

/// One potential transaction shape, at segment granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSpec {
    /// Human-readable name ("type-2 inventory posting", ...).
    pub name: String,
    /// Segments written.
    pub writes: Vec<SegmentId>,
    /// Segments read.
    pub reads: Vec<SegmentId>,
}

impl AccessSpec {
    /// Build a spec.
    pub fn new(name: impl Into<String>, writes: Vec<SegmentId>, reads: Vec<SegmentId>) -> Self {
        AccessSpec {
            name: name.into(),
            writes,
            reads,
        }
    }

    /// The access set `a(t) = r(t) ∪ w(t)`.
    pub fn accesses(&self) -> Vec<SegmentId> {
        let mut a = self.reads.clone();
        for &w in &self.writes {
            if !a.contains(&w) {
                a.push(w);
            }
        }
        a
    }
}

/// Build the data hierarchy graph `DHG(P, T^u)` at **class** granularity:
/// arcs between the classes of the written/accessed segments under
/// `class_of` (identity grouping ⇒ the textbook segment-level DHG).
pub fn build_dhg_grouped(n_classes: usize, specs: &[AccessSpec], class_of: &[ClassId]) -> Digraph {
    let mut g = Digraph::new(n_classes);
    for spec in specs {
        let accesses = spec.accesses();
        for &w in &spec.writes {
            let wc = class_of[w.index()].index();
            for &a in &accesses {
                let ac = class_of[a.index()].index();
                if wc != ac {
                    g.add_arc(wc, ac);
                }
            }
        }
    }
    g
}

/// Build the segment-level data hierarchy graph (identity grouping).
pub fn build_dhg(n_segments: usize, specs: &[AccessSpec]) -> Digraph {
    let identity: Vec<ClassId> = (0..n_segments as u32).map(ClassId).collect();
    build_dhg_grouped(n_segments, specs, &identity)
}

/// Why a partition failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// A spec writes no segment (it is a read-only shape; pass read-only
    /// transactions to the scheduler as such instead).
    SpecWritesNothing {
        /// Name of the offending spec.
        spec: String,
    },
    /// A spec writes segments of more than one class; under a
    /// TST-hierarchical partition "t ∈ T^u writes in one and only one
    /// data segment".
    MultiClassWriter {
        /// Name of the offending spec.
        spec: String,
        /// The classes it writes into.
        classes: Vec<ClassId>,
    },
    /// The DHG has a directed cycle (class indices).
    DirectedCycle(Vec<ClassId>),
    /// The DHG's transitive reduction is not a semi-tree: two classes are
    /// connected by more than one undirected path.
    NotSemiTree {
        /// One endpoint of the cycle-closing critical arc.
        u: ClassId,
        /// The other endpoint.
        v: ClassId,
    },
    /// `class_of` assigns a segment to an out-of-range class.
    BadGrouping,
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::SpecWritesNothing { spec } => {
                write!(f, "spec '{spec}' writes no segment")
            }
            HierarchyError::MultiClassWriter { spec, classes } => {
                write!(f, "spec '{spec}' writes into multiple classes {classes:?}")
            }
            HierarchyError::DirectedCycle(c) => write!(f, "DHG has a directed cycle {c:?}"),
            HierarchyError::NotSemiTree { u, v } => write!(
                f,
                "DHG reduction is not a semi-tree: second undirected path closed by {u}–{v}"
            ),
            HierarchyError::BadGrouping => write!(f, "segment mapped to out-of-range class"),
        }
    }
}

impl std::error::Error for HierarchyError {}

/// Why a transaction profile is illegal under a given hierarchy. Illegal
/// profiles are the trigger for dynamic restructuring (Section 7.1.1).
///
/// Violations carry the human-readable segment and class *names* (as
/// configured via [`Hierarchy::with_segment_names`], defaulting to
/// `D{i}`/`T{i}`) so `hdd-lint` diagnostics read in workload vocabulary
/// rather than raw indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileViolation {
    /// An update profile without a class, or a class out of range.
    NoClass,
    /// The profile writes a segment outside its root class.
    WritesOutsideRoot {
        /// The offending segment.
        segment: SegmentId,
        /// Its human-readable name.
        segment_name: String,
        /// The profile's declared root class.
        class: ClassId,
        /// Its human-readable name.
        class_name: String,
    },
    /// The profile reads a segment whose class is neither its own class
    /// nor higher than it — Protocol A has no version bound for it.
    ReadsNonAncestor {
        /// The offending segment.
        segment: SegmentId,
        /// Its human-readable name.
        segment_name: String,
        /// The profile's declared root class.
        class: ClassId,
        /// Its human-readable name.
        class_name: String,
    },
    /// A segment id out of range.
    UnknownSegment {
        /// The offending segment.
        segment: SegmentId,
    },
}

impl std::fmt::Display for ProfileViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileViolation::NoClass => {
                write!(f, "update profile has no (or an out-of-range) class")
            }
            ProfileViolation::WritesOutsideRoot {
                segment,
                segment_name,
                class,
                class_name,
            } => write!(
                f,
                "profile rooted in class {class_name} ({class}) writes segment \
                 {segment_name} ({segment}) outside its root class"
            ),
            ProfileViolation::ReadsNonAncestor {
                segment,
                segment_name,
                class,
                class_name,
            } => write!(
                f,
                "profile rooted in class {class_name} ({class}) reads segment \
                 {segment_name} ({segment}), which is not an ancestor of its root"
            ),
            ProfileViolation::UnknownSegment { segment } => {
                write!(f, "segment {segment} is out of range for this hierarchy")
            }
        }
    }
}

/// Derive class names from segment names: single-segment classes borrow
/// the segment's name, grouped classes join theirs, empty classes fall
/// back to `T{i}`.
fn derive_class_names(
    class_of: &[ClassId],
    n_classes: usize,
    segment_names: &[String],
) -> Vec<String> {
    (0..n_classes)
        .map(|c| {
            let segs: Vec<&str> = class_of
                .iter()
                .enumerate()
                .filter(|(_, cls)| cls.index() == c)
                .map(|(s, _)| segment_names[s].as_str())
                .collect();
            match segs.len() {
                0 => format!("T{c}"),
                1 => segs[0].to_string(),
                _ => format!("{{{}}}", segs.join("+")),
            }
        })
        .collect()
}

/// A validated TST-hierarchical partition with its path tables.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    n_segments: usize,
    class_of_segment: Vec<ClassId>,
    n_classes: usize,
    dhg: Digraph,
    paths: PathTables,
    /// Human-readable segment names (defaults `D{i}`).
    segment_names: Vec<String>,
    /// Human-readable class names, derived from segment names: a
    /// single-segment class borrows its segment's name, a grouped class
    /// joins them (`"{a+b}"`).
    class_names: Vec<String>,
}

impl Hierarchy {
    /// Validate the identity partition (one class per segment) described
    /// by `specs` over `n_segments` segments.
    pub fn build(n_segments: usize, specs: &[AccessSpec]) -> Result<Hierarchy, HierarchyError> {
        let identity: Vec<ClassId> = (0..n_segments as u32).map(ClassId).collect();
        Self::build_grouped(n_segments, specs, identity, n_segments)
    }

    /// Validate a grouped partition: `class_of[s]` maps each segment to
    /// its class (`0..n_classes`).
    pub fn build_grouped(
        n_segments: usize,
        specs: &[AccessSpec],
        class_of: Vec<ClassId>,
        n_classes: usize,
    ) -> Result<Hierarchy, HierarchyError> {
        if class_of.len() != n_segments || class_of.iter().any(|c| c.index() >= n_classes) {
            return Err(HierarchyError::BadGrouping);
        }
        for spec in specs {
            if spec.writes.is_empty() {
                return Err(HierarchyError::SpecWritesNothing {
                    spec: spec.name.clone(),
                });
            }
            let mut classes: Vec<ClassId> =
                spec.writes.iter().map(|w| class_of[w.index()]).collect();
            classes.sort_unstable();
            classes.dedup();
            if classes.len() > 1 {
                return Err(HierarchyError::MultiClassWriter {
                    spec: spec.name.clone(),
                    classes,
                });
            }
        }
        let dhg = build_dhg_grouped(n_classes, specs, &class_of);
        Self::from_parts(n_segments, class_of, n_classes, dhg)
    }

    /// Validate a hand-built class-level DHG with an explicit grouping.
    pub fn from_parts(
        n_segments: usize,
        class_of: Vec<ClassId>,
        n_classes: usize,
        dhg: Digraph,
    ) -> Result<Hierarchy, HierarchyError> {
        if class_of.len() != n_segments
            || class_of.iter().any(|c| c.index() >= n_classes)
            || dhg.node_count() != n_classes
        {
            return Err(HierarchyError::BadGrouping);
        }
        let reduction = check_transitive_semi_tree(&dhg).map_err(|v| match v {
            SemiTreeViolation::DirectedCycle(c) => {
                HierarchyError::DirectedCycle(c.into_iter().map(|i| ClassId(i as u32)).collect())
            }
            SemiTreeViolation::UndirectedCycle { u, v } => HierarchyError::NotSemiTree {
                u: ClassId(u as u32),
                v: ClassId(v as u32),
            },
        })?;
        let segment_names: Vec<String> = (0..n_segments).map(|i| format!("D{i}")).collect();
        let class_names = derive_class_names(&class_of, n_classes, &segment_names);
        Ok(Hierarchy {
            n_segments,
            class_of_segment: class_of,
            n_classes,
            dhg,
            paths: PathTables::new(reduction),
            segment_names,
            class_names,
        })
    }

    /// Attach human-readable segment names (one per segment, in order).
    /// Class names are re-derived from them. Panics when the name count
    /// does not match the segment count.
    pub fn with_segment_names(mut self, names: Vec<String>) -> Hierarchy {
        assert_eq!(
            names.len(),
            self.n_segments,
            "one name per segment required"
        );
        self.class_names = derive_class_names(&self.class_of_segment, self.n_classes, &names);
        self.segment_names = names;
        self
    }

    /// The human-readable name of `segment` (default `D{i}`).
    pub fn segment_name(&self, segment: SegmentId) -> &str {
        &self.segment_names[segment.index()]
    }

    /// The human-readable name of `class` (default its segment's name).
    pub fn class_name(&self, class: ClassId) -> &str {
        &self.class_names[class.index()]
    }

    /// Validate a hand-built segment-level DHG (identity grouping). Used
    /// by the decomposition algorithms and property tests.
    pub fn from_dhg(dhg: Digraph) -> Result<Hierarchy, HierarchyError> {
        let n = dhg.node_count();
        let identity: Vec<ClassId> = (0..n as u32).map(ClassId).collect();
        Self::from_parts(n, identity, n, dhg)
    }

    /// Number of physical segments.
    pub fn segment_count(&self) -> usize {
        self.n_segments
    }

    /// Number of transaction classes (DHG nodes).
    pub fn class_count(&self) -> usize {
        self.n_classes
    }

    /// The class-level data hierarchy graph.
    pub fn dhg(&self) -> &Digraph {
        &self.dhg
    }

    /// Path tables (critical paths, UCPs, higher-than) over the THG —
    /// isomorphic to the DHG under the class indexing.
    pub fn paths(&self) -> &PathTables {
        &self.paths
    }

    /// `T_j ↑ T_i`.
    pub fn higher_than(&self, j: ClassId, i: ClassId) -> bool {
        self.paths.higher_than(j.index(), i.index())
    }

    /// The class owning `segment`.
    pub fn class_of(&self, segment: SegmentId) -> ClassId {
        self.class_of_segment[segment.index()]
    }

    /// The segments grouped under `class`.
    pub fn segments_of(&self, class: ClassId) -> Vec<SegmentId> {
        (0..self.n_segments)
            .filter(|&s| self.class_of_segment[s] == class)
            .map(|s| SegmentId(s as u32))
            .collect()
    }

    /// Validate a transaction profile against the hierarchy.
    ///
    /// Update profiles must write only inside their root class and read
    /// only the root class or classes higher than it. Read-only profiles
    /// are always legal (Protocol A or C applies depending on whether
    /// their read classes lie on one critical path).
    pub fn validate_profile(&self, profile: &TxnProfile) -> Result<(), ProfileViolation> {
        for &s in profile.read_segments.iter().chain(&profile.write_segments) {
            if s.index() >= self.n_segments {
                return Err(ProfileViolation::UnknownSegment { segment: s });
            }
        }
        if profile.is_read_only() {
            return Ok(());
        }
        let class = profile.class.ok_or(ProfileViolation::NoClass)?;
        if class.index() >= self.n_classes {
            return Err(ProfileViolation::NoClass);
        }
        for &w in &profile.write_segments {
            if self.class_of(w) != class {
                return Err(ProfileViolation::WritesOutsideRoot {
                    segment: w,
                    segment_name: self.segment_name(w).to_string(),
                    class,
                    class_name: self.class_name(class).to_string(),
                });
            }
        }
        for &r in &profile.read_segments {
            let rc = self.class_of(r);
            if rc != class && !self.paths.higher_than(rc.index(), class.index()) {
                return Err(ProfileViolation::ReadsNonAncestor {
                    segment: r,
                    segment_name: self.segment_name(r).to_string(),
                    class,
                    class_name: self.class_name(class).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Render the hierarchy in Graphviz DOT: classes as nodes (labelled
    /// with their segments when grouped), critical arcs solid,
    /// transitively induced DHG arcs dashed.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph hierarchy {\n  rankdir=BT;\n");
        for c in 0..self.n_classes {
            let class = ClassId(c as u32);
            let segs = self.segments_of(class);
            let label = if segs.len() == 1 && segs[0].index() == c {
                format!("{class}")
            } else {
                let seg_list: Vec<String> = segs.iter().map(ToString::to_string).collect();
                format!("{class} = {{{}}}", seg_list.join(", "))
            };
            let _ = writeln!(out, "  {c} [label=\"{label}\"];");
        }
        for (u, v) in self.dhg.arcs() {
            let style = if self.paths.is_critical_arc(u, v) {
                ""
            } else {
                " [style=dashed]"
            };
            let _ = writeln!(out, "  {u} -> {v}{style};");
        }
        out.push_str("}\n");
        out
    }

    /// Whether a read-only profile's segments lie on one critical path
    /// (Protocol A via a fictitious class below the chain) or not
    /// (Protocol C via a time wall).
    pub fn read_only_on_one_critical_path(&self, read_segments: &[SegmentId]) -> bool {
        let idx: Vec<usize> = read_segments
            .iter()
            .map(|s| self.class_of(*s).index())
            .collect();
        !idx.is_empty() && self.paths.all_on_one_critical_path(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SegmentId {
        SegmentId(i)
    }

    /// The paper's inventory example (Section 1.2.1):
    ///   D0 = event records (sales / sales-mod / arrivals)
    ///   D1 = inventory
    ///   D2 = merchandise-on-order
    /// type 1 writes D0;
    /// type 2 writes D1, reads D0;
    /// type 3 writes D2, reads D0, D1, D2.
    fn inventory_specs() -> Vec<AccessSpec> {
        vec![
            AccessSpec::new("type1", vec![s(0)], vec![]),
            AccessSpec::new("type2", vec![s(1)], vec![s(0)]),
            AccessSpec::new("type3", vec![s(2)], vec![s(0), s(1), s(2)]),
        ]
    }

    #[test]
    fn inventory_dhg_shape() {
        let dhg = build_dhg(3, &inventory_specs());
        assert!(dhg.has_arc(1, 0));
        assert!(dhg.has_arc(2, 0));
        assert!(dhg.has_arc(2, 1));
        assert!(!dhg.has_arc(0, 1));
        assert_eq!(dhg.arc_count(), 3);
    }

    #[test]
    fn inventory_hierarchy_validates() {
        let h = Hierarchy::build(3, &inventory_specs()).expect("inventory DHG is a TST");
        // Reduction = chain 2 → 1 → 0.
        assert!(h.paths().is_critical_arc(2, 1));
        assert!(h.paths().is_critical_arc(1, 0));
        assert!(!h.paths().is_critical_arc(2, 0)); // induced
        assert!(h.higher_than(ClassId(0), ClassId(2)));
        assert!(!h.higher_than(ClassId(2), ClassId(0)));
        assert_eq!(h.class_count(), 3);
        assert_eq!(h.class_of(s(1)), ClassId(1));
        assert_eq!(h.segments_of(ClassId(1)), vec![s(1)]);
    }

    #[test]
    fn multi_class_writer_rejected() {
        let specs = vec![AccessSpec::new("bad", vec![s(0), s(1)], vec![])];
        match Hierarchy::build(2, &specs) {
            Err(HierarchyError::MultiClassWriter { spec, classes }) => {
                assert_eq!(spec, "bad");
                assert_eq!(classes.len(), 2);
            }
            other => panic!("expected MultiClassWriter, got {other:?}"),
        }
    }

    #[test]
    fn grouping_legalizes_multi_segment_writer() {
        // Writing segments 0 and 1 is fine once they share a class.
        let specs = vec![
            AccessSpec::new("w01", vec![s(0), s(1)], vec![s(2)]),
            AccessSpec::new("w2", vec![s(2)], vec![]),
        ];
        let h = Hierarchy::build_grouped(3, &specs, vec![ClassId(0), ClassId(0), ClassId(1)], 2)
            .expect("grouped partition is a TST");
        assert_eq!(h.class_count(), 2);
        assert_eq!(h.class_of(s(1)), ClassId(0));
        assert_eq!(h.segments_of(ClassId(0)), vec![s(0), s(1)]);
        assert!(h.higher_than(ClassId(1), ClassId(0)));
        // Profile writing both segments of class 0 validates.
        let p = TxnProfile {
            class: Some(ClassId(0)),
            read_segments: vec![s(2)],
            write_segments: vec![s(0), s(1)],
        };
        assert!(h.validate_profile(&p).is_ok());
    }

    #[test]
    fn writeless_spec_rejected() {
        let specs = vec![AccessSpec::new("ro", vec![], vec![s(0)])];
        assert!(matches!(
            Hierarchy::build(1, &specs),
            Err(HierarchyError::SpecWritesNothing { .. })
        ));
    }

    #[test]
    fn mutual_readers_create_cycle() {
        let specs = vec![
            AccessSpec::new("a", vec![s(0)], vec![s(1)]),
            AccessSpec::new("b", vec![s(1)], vec![s(0)]),
        ];
        assert!(matches!(
            Hierarchy::build(2, &specs),
            Err(HierarchyError::DirectedCycle(_))
        ));
    }

    #[test]
    fn diamond_rejected_as_non_semi_tree() {
        let specs = vec![
            AccessSpec::new("a", vec![s(1)], vec![s(0)]),
            AccessSpec::new("b", vec![s(2)], vec![s(0)]),
            AccessSpec::new("c", vec![s(3)], vec![s(1), s(2)]),
        ];
        assert!(matches!(
            Hierarchy::build(4, &specs),
            Err(HierarchyError::NotSemiTree { .. })
        ));
    }

    #[test]
    fn bad_grouping_rejected() {
        let specs = vec![AccessSpec::new("a", vec![s(0)], vec![])];
        assert_eq!(
            Hierarchy::build_grouped(1, &specs, vec![ClassId(5)], 2).unwrap_err(),
            HierarchyError::BadGrouping
        );
        assert_eq!(
            Hierarchy::build_grouped(1, &specs, vec![], 1).unwrap_err(),
            HierarchyError::BadGrouping
        );
    }

    #[test]
    fn profile_validation() {
        let h = Hierarchy::build(3, &inventory_specs()).unwrap();
        let ok = TxnProfile::update(ClassId(2), vec![s(0), s(1), s(2)]);
        assert!(h.validate_profile(&ok).is_ok());
        let bad = TxnProfile::update(ClassId(0), vec![s(1)]);
        match h.validate_profile(&bad) {
            Err(ProfileViolation::ReadsNonAncestor {
                segment,
                segment_name,
                class,
                class_name,
            }) => {
                assert_eq!(segment, s(1));
                assert_eq!(segment_name, "D1");
                assert_eq!(class, ClassId(0));
                assert_eq!(class_name, "D0");
            }
            other => panic!("expected ReadsNonAncestor, got {other:?}"),
        }
        let ro = TxnProfile::read_only(vec![s(0), s(1)]);
        assert!(h.validate_profile(&ro).is_ok());
        let oob = TxnProfile::read_only(vec![s(9)]);
        assert_eq!(
            h.validate_profile(&oob),
            Err(ProfileViolation::UnknownSegment { segment: s(9) })
        );
    }

    #[test]
    fn violations_render_custom_names() {
        let h = Hierarchy::build(3, &inventory_specs())
            .unwrap()
            .with_segment_names(vec![
                "events".to_string(),
                "inventory".to_string(),
                "on-order".to_string(),
            ]);
        assert_eq!(h.segment_name(s(1)), "inventory");
        assert_eq!(h.class_name(ClassId(2)), "on-order");
        let bad = TxnProfile {
            class: Some(ClassId(1)),
            read_segments: vec![],
            write_segments: vec![s(2)],
        };
        let err = h.validate_profile(&bad).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("on-order"), "{msg}");
        assert!(msg.contains("inventory"), "{msg}");
        // Grouped classes join their segment names.
        let specs = vec![
            AccessSpec::new("w01", vec![s(0), s(1)], vec![s(2)]),
            AccessSpec::new("w2", vec![s(2)], vec![]),
        ];
        let g = Hierarchy::build_grouped(3, &specs, vec![ClassId(0), ClassId(0), ClassId(1)], 2)
            .unwrap()
            .with_segment_names(vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(g.class_name(ClassId(0)), "{a+b}");
        assert_eq!(g.class_name(ClassId(1)), "c");
    }

    #[test]
    fn dot_export_marks_critical_and_induced_arcs() {
        let h = Hierarchy::build(3, &inventory_specs()).unwrap();
        let dot = h.to_dot();
        assert!(dot.starts_with("digraph hierarchy"));
        assert!(dot.contains("2 -> 1;"), "critical arc solid: {dot}");
        assert!(
            dot.contains("2 -> 0 [style=dashed];"),
            "induced arc dashed: {dot}"
        );
        // Grouped hierarchies label merged classes with their segments.
        let specs = vec![
            AccessSpec::new("w01", vec![s(0), s(1)], vec![s(2)]),
            AccessSpec::new("w2", vec![s(2)], vec![]),
        ];
        let g = Hierarchy::build_grouped(3, &specs, vec![ClassId(0), ClassId(0), ClassId(1)], 2)
            .unwrap();
        assert!(g.to_dot().contains("T0 = {D0, D1}"));
    }

    #[test]
    fn read_only_chain_detection() {
        let h = Hierarchy::build(3, &inventory_specs()).unwrap();
        assert!(h.read_only_on_one_critical_path(&[s(0), s(2)]));
        assert!(h.read_only_on_one_critical_path(&[s(1)]));
        assert!(!h.read_only_on_one_critical_path(&[]));
        let specs = vec![
            AccessSpec::new("a", vec![s(1)], vec![s(0)]),
            AccessSpec::new("b", vec![s(2)], vec![s(0)]),
        ];
        let h2 = Hierarchy::build(3, &specs).unwrap();
        assert!(!h2.read_only_on_one_critical_path(&[s(1), s(2)]));
        assert!(h2.read_only_on_one_critical_path(&[s(1), s(0)]));
    }
}
