//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `SeedableRng::seed_from_u64`, `rngs::StdRng`, and the `Rng`
//! extension methods `gen`, `gen_range`, `gen_bool`.
//!
//! The build environment has no crates.io access, so external
//! dependencies are replaced by in-workspace shims. Determinism per
//! seed is the property the simulators rely on; the generator here is
//! SplitMix64, which passes BigCrush and is more than adequate for
//! workload generation (we make no cryptographic claims). Streams are
//! deterministic for a given seed but do NOT match upstream `rand`'s
//! ChaCha-based `StdRng` output.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's full output domain.
pub trait Standard {
    /// Sample one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

mod sealed {
    /// Integer types usable with `gen_range`. `base` maps to an
    /// order-preserving u64 so one uniform routine covers signed and
    /// unsigned types.
    pub trait RangeInt: Copy + PartialOrd {
        fn to_base(self) -> u64;
        fn from_base(v: u64) -> Self;
    }

    macro_rules! unsigned_range_int {
        ($($t:ty),*) => {$(
            impl RangeInt for $t {
                fn to_base(self) -> u64 { self as u64 }
                fn from_base(v: u64) -> Self { v as $t }
            }
        )*};
    }
    macro_rules! signed_range_int {
        ($($t:ty : $u:ty),*) => {$(
            impl RangeInt for $t {
                fn to_base(self) -> u64 { (self as $u ^ (1 << (<$u>::BITS - 1))) as u64 }
                fn from_base(v: u64) -> Self { ((v as $u) ^ (1 << (<$u>::BITS - 1))) as $t }
            }
        )*};
    }
    unsigned_range_int!(u8, u16, u32, u64, usize);
    signed_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Inclusive bounds `(low, high)`; panics if empty.
    fn bounds(self) -> (T, T);
}

impl<T: sealed::RangeInt> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        let hi = T::from_base(self.end.to_base() - 1);
        (self.start, hi)
    }
}

impl<T: sealed::RangeInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        (lo, hi)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: sealed::RangeInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        let (lo_b, hi_b) = (lo.to_base(), hi.to_base());
        let span = hi_b - lo_b; // inclusive span - 1
        if span == u64::MAX {
            return T::from_base(self.next_u64());
        }
        let n = span + 1;
        // Debiased multiply-based bounded sampling (Lemire).
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_base(lo_b + v % n);
            }
        }
    }

    /// Bernoulli sample: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeded deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(0..10u64);
            assert!(v < 10);
            let w: i64 = r.gen_range(-5i64..=10);
            assert!((-5..=10).contains(&w));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
