//! Standard-format exporters: Prometheus text exposition and Chrome
//! trace (Perfetto-loadable) JSON, both hand-rolled over `std`.
//!
//! The repo's native exports (`BENCH_*.json`, `ObsSnapshot::to_json`)
//! are bespoke; external tooling speaks two lingua francas instead:
//!
//! * [`prometheus_text`] renders counters, latency summaries and the
//!   [`GaugeBoard`](crate::gauges::GaugeBoard) as Prometheus text
//!   exposition format (`# TYPE`-annotated families, `{label="v"}`
//!   samples) — scrapeable, `promtool`-checkable, diffable;
//! * [`chrome_trace`] renders a drained
//!   [`TraceRing`](crate::trace::TraceRing) as Chrome trace-event JSON
//!   (`chrome://tracing`, Perfetto UI): one track per reader class for
//!   Protocol A cross-reads, a wall-reader track for Protocol C, and a
//!   scheduler track for walls/GC/rejects; watchdog reaps and driver
//!   backoff become duration (`"ph":"X"`) events.
//!
//! Both formats ship with tiny in-repo validators
//! ([`validate_prometheus`], [`validate_chrome_trace`]) so `ci.sh
//! export-smoke` can gate the output shape without network tools, and
//! both are golden-tested below: the byte-exact output for a fixed
//! input is part of the contract.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::drift::DriftSnapshot;
use crate::gauges::{GaugeSnapshot, WALL_READER};
use crate::hist::HistogramSnapshot;
use crate::span::{FlightLog, Terminal, WaitCause, NO_CLASS};
use crate::trace::TraceEvent;
use crate::ObsSnapshot;

/// Append one summary family (`quantile` samples + `_sum`/`_count`) in
/// exposition format. Empty histograms still emit the family (with
/// zero count) so scrape consumers see a stable schema.
fn push_summary(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let lb = |q: &str| {
        if labels.is_empty() {
            format!("{{quantile=\"{q}\"}}")
        } else {
            format!("{{{labels},quantile=\"{q}\"}}")
        }
    };
    let plain = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}{} {}", lb("0.5"), h.p50());
    let _ = writeln!(out, "{name}{} {}", lb("0.95"), h.p95());
    let _ = writeln!(out, "{name}{} {}", lb("0.99"), h.p99());
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// Sanitize a counter header into a Prometheus metric-name fragment.
fn metric_fragment(raw: &str) -> String {
    raw.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Render a full scrape: `counters` (name, cumulative value) pairs as
/// `hdd_<name>_total` counter families, the [`ObsSnapshot`] latency
/// histograms as summaries, and the gauge board as gauge families
/// (per-class/per-segment via labels, cross-read staleness as a
/// labelled summary). Zero-dependency; output passes
/// [`validate_prometheus`] by construction.
pub fn prometheus_text(
    counters: &[(&str, u64)],
    obs: &ObsSnapshot,
    gauges: &GaugeSnapshot,
) -> String {
    prometheus_text_full(counters, obs, gauges, None)
}

/// [`prometheus_text`] plus the drift-observatory families
/// (`hdd_drift_*`, `hdd_wall_drag_*`) when a configured
/// [`DriftSnapshot`] is supplied; with `None` (or an unconfigured
/// sketch) the output is byte-identical to [`prometheus_text`], so the
/// golden contract on the drift-free exposition is unchanged.
pub fn prometheus_text_full(
    counters: &[(&str, u64)],
    obs: &ObsSnapshot,
    gauges: &GaugeSnapshot,
    drift: Option<&DriftSnapshot>,
) -> String {
    let mut out = String::new();
    for (name, v) in counters {
        let n = format!("hdd_{}_total", metric_fragment(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    // Per-reason rejection breakdown as one labelled family, derived
    // from the `rej_*` counters (`MetricsSnapshot::counter_pairs`
    // naming): `rej_write_too_late` becomes
    // `hdd_rejections_by_reason_total{reason="write-too-late"}`.
    let rejections: Vec<(String, u64)> = counters
        .iter()
        .filter_map(|(name, v)| name.strip_prefix("rej_").map(|r| (r.replace('_', "-"), *v)))
        .collect();
    if !rejections.is_empty() {
        let _ = writeln!(out, "# TYPE hdd_rejections_by_reason_total counter");
        for (reason, v) in &rejections {
            let _ = writeln!(
                out,
                "hdd_rejections_by_reason_total{{reason=\"{reason}\"}} {v}"
            );
        }
    }
    let _ = writeln!(out, "# TYPE hdd_trace_recorded_total counter");
    let _ = writeln!(out, "hdd_trace_recorded_total {}", obs.trace_recorded);
    let _ = writeln!(out, "# TYPE hdd_trace_dropped_total counter");
    let _ = writeln!(out, "hdd_trace_dropped_total {}", obs.trace_dropped);
    for (name, h) in [
        ("hdd_commit_latency_ns", &obs.commit_latency),
        ("hdd_op_service_ns", &obs.op_service),
        ("hdd_block_wait_ns", &obs.block_wait),
        ("hdd_backoff_sleep_ns", &obs.backoff_sleep),
        ("hdd_registry_scan_len", &obs.registry_scan),
    ] {
        let _ = writeln!(out, "# TYPE {name} summary");
        push_summary(&mut out, name, "", h);
    }
    for (name, v) in [
        ("hdd_clock_now", gauges.clock_now),
        ("hdd_wall_anchor", gauges.wall_anchor),
        ("hdd_wall_released_at", gauges.wall_released_at),
        ("hdd_wall_floor", gauges.wall_floor),
        ("hdd_wall_lag", gauges.wall_lag),
        ("hdd_active_txns", gauges.active_txns),
        ("hdd_registry_intervals", gauges.registry_intervals),
        ("hdd_registry_settled_lag", gauges.registry_settled_lag),
        ("hdd_store_versions", gauges.store_versions),
        ("hdd_store_granules", gauges.store_granules),
        ("hdd_store_max_chain", gauges.store_max_chain),
        ("hdd_gc_watermark", gauges.gc_watermark),
        ("hdd_gc_backlog", gauges.gc_backlog),
        ("hdd_driver_claimed", gauges.driver_claimed),
        ("hdd_driver_offered", gauges.driver_offered),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    if !gauges.classes.is_empty() {
        for (name, get) in [
            ("hdd_class_i_old", 0usize),
            ("hdd_class_active", 1),
            ("hdd_class_settled_lag", 2),
            ("hdd_class_wall_component", 3),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for c in &gauges.classes {
                let v = match get {
                    0 => c.i_old,
                    1 => c.active,
                    2 => c.settled_lag,
                    _ => c.wall_component,
                };
                let _ = writeln!(out, "{name}{{class=\"{}\"}} {v}", c.class);
            }
        }
    }
    if !gauges.segment_walls.is_empty() {
        let _ = writeln!(out, "# TYPE hdd_segment_wall gauge");
        for (i, w) in gauges.segment_walls.iter().enumerate() {
            let _ = writeln!(out, "hdd_segment_wall{{segment=\"{i}\"}} {w}");
        }
    }
    if !gauges.staleness.is_empty() {
        let _ = writeln!(out, "# TYPE hdd_read_staleness_ticks summary");
        for cell in &gauges.staleness {
            push_summary(
                &mut out,
                "hdd_read_staleness_ticks",
                &format!(
                    "reader=\"{}\",segment=\"{}\"",
                    cell.reader_label(),
                    cell.segment
                ),
                &cell.hist,
            );
        }
    }
    // Durability families last (stable suffix: the golden test pins it).
    let _ = writeln!(out, "# TYPE hdd_wal_fsync_batches_total counter");
    let _ = writeln!(out, "hdd_wal_fsync_batches_total {}", gauges.wal_batches);
    let _ = writeln!(out, "# TYPE hdd_recovery_anomalies_total counter");
    let _ = writeln!(
        out,
        "hdd_recovery_anomalies_total {}",
        gauges.recovery_anomalies
    );
    for (name, v) in [
        ("hdd_wal_frames", gauges.wal_frames),
        ("hdd_wal_bytes", gauges.wal_bytes),
        ("hdd_recovery_replayed", gauges.recovery_replayed),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    let _ = writeln!(out, "# TYPE hdd_wal_fsync_ns summary");
    push_summary(&mut out, "hdd_wal_fsync_ns", "", &gauges.fsync_ns);
    // Drift-observatory families, appended only when the sketch is
    // configured so the drift-free exposition keeps its golden tail.
    if let Some(d) = drift.filter(|d| d.configured) {
        for (name, v) in [
            ("hdd_drift_score", d.score_milli),
            ("hdd_drift_access_score", d.access_score_milli),
            ("hdd_drift_edge_score", d.edge_score_milli),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {:.3}", v as f64 / 1000.0);
        }
        let _ = writeln!(out, "# TYPE hdd_drift_tripped gauge");
        let _ = writeln!(out, "hdd_drift_tripped {}", u64::from(d.tripped));
        let _ = writeln!(out, "# TYPE hdd_drift_folds_total counter");
        let _ = writeln!(out, "hdd_drift_folds_total {}", d.folds);
        let _ = writeln!(out, "# TYPE hdd_drift_trips_total counter");
        let _ = writeln!(out, "hdd_drift_trips_total {}", d.trips);
        let _ = writeln!(out, "# TYPE hdd_class_begun_total counter");
        for c in &d.classes {
            let _ = writeln!(
                out,
                "hdd_class_begun_total{{class=\"{}\"}} {}",
                DriftSnapshot::reader_label(c.class),
                c.begun
            );
        }
        let _ = writeln!(out, "# TYPE hdd_class_committed_total counter");
        for c in &d.classes {
            let _ = writeln!(
                out,
                "hdd_class_committed_total{{class=\"{}\"}} {}",
                DriftSnapshot::reader_label(c.class),
                c.committed
            );
        }
        let _ = writeln!(out, "# TYPE hdd_wall_drag_blame_total counter");
        for c in d.classes.iter().filter(|c| c.class != WALL_READER) {
            let _ = writeln!(
                out,
                "hdd_wall_drag_blame_total{{class=\"{}\"}} {}",
                c.class, c.drag_blame
            );
        }
        let _ = writeln!(out, "# TYPE hdd_wall_drag_ticks summary");
        push_summary(&mut out, "hdd_wall_drag_ticks", "", &d.drag_hist);
    }
    out
}

/// Scrape-shape statistics returned by [`validate_prometheus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromStats {
    /// `# TYPE` families declared.
    pub families: usize,
    /// Sample lines accepted.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse a `key="value",key="value"` label body; returns `Err` on
/// malformed syntax.
fn validate_labels(body: &str) -> Result<(), String> {
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if !valid_metric_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label value not quoted after {key:?}")),
        }
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else if c == '\n' {
                return Err("raw newline in label value".to_string());
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value for {key:?}"))?;
        rest = &rest[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| format!("expected ',' between labels, got {rest:?}"))?;
    }
}

/// Validate Prometheus text exposition shape: every sample's family
/// must be `# TYPE`-declared *before* use (with `_sum`/`_count`
/// resolving to their summary base), types must be
/// `counter`/`gauge`/`summary`, label bodies must be well-formed, and
/// every value must parse as `f64`. Returns family/sample counts.
pub fn validate_prometheus(text: &str) -> Result<PromStats, String> {
    let mut declared: HashSet<String> = HashSet::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ctx = |m: String| format!("line {}: {m}", ln + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| ctx("TYPE without name".into()))?;
            let ty = it.next().ok_or_else(|| ctx("TYPE without type".into()))?;
            if it.next().is_some() {
                return Err(ctx(format!("trailing tokens after TYPE {name}")));
            }
            if !valid_metric_name(name) {
                return Err(ctx(format!("bad family name {name:?}")));
            }
            if !matches!(
                ty,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(ctx(format!("unknown type {ty:?}")));
            }
            if !declared.insert(name.to_string()) {
                return Err(ctx(format!("duplicate TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP / comments
        }
        // Sample line: name[{labels}] value
        let (name, rest) = match line.find('{') {
            Some(b) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| ctx("unclosed label braces".into()))?;
                if close < b {
                    return Err(ctx("mismatched label braces".into()));
                }
                validate_labels(&line[b + 1..close]).map_err(ctx)?;
                (&line[..b], &line[close + 1..])
            }
            None => {
                let sp = line
                    .find(' ')
                    .ok_or_else(|| ctx("sample without value".into()))?;
                (&line[..sp], &line[sp..])
            }
        };
        if !valid_metric_name(name) {
            return Err(ctx(format!("bad metric name {name:?}")));
        }
        let base = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .or_else(|| name.strip_suffix("_bucket"))
            .filter(|b| declared.contains(*b))
            .unwrap_or(name);
        if !declared.contains(base) {
            return Err(ctx(format!("sample {name} before its TYPE declaration")));
        }
        let value = rest.trim();
        if value.is_empty() || value.split_whitespace().count() != 1 {
            return Err(ctx(format!("expected exactly one value, got {rest:?}")));
        }
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(ctx(format!("unparsable value {value:?}")));
        }
        samples += 1;
    }
    Ok(PromStats {
        families: declared.len(),
        samples,
    })
}

/// Track ids used in [`chrome_trace`] output.
const TID_SCHEDULER: u64 = 0;
const TID_WALL_READERS: u64 = 1;
const TID_CLASS_BASE: u64 = 2;

fn event_tid(ev: &TraceEvent) -> u64 {
    match ev {
        TraceEvent::CrossRead { reader_class, .. } => TID_CLASS_BASE + u64::from(*reader_class),
        TraceEvent::WallRead { .. } => TID_WALL_READERS,
        _ => TID_SCHEDULER,
    }
}

fn tid_name(tid: u64) -> String {
    match tid {
        TID_SCHEDULER => "scheduler".to_string(),
        TID_WALL_READERS => "wall readers (protocol C)".to_string(),
        t => format!("class {} readers (protocol A)", t - TID_CLASS_BASE),
    }
}

/// Render the event's `args` object (all payload fields, spelled out).
fn event_args(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::CrossRead {
            txn,
            reader_class,
            target_class,
            segment,
            key,
            m,
            bound,
            version,
        } => format!(
            "{{\"txn\":{txn},\"reader_class\":{reader_class},\"target_class\":{target_class},\
             \"segment\":{segment},\"key\":{key},\"m\":{m},\"bound\":{bound},\
             \"version\":{version},\"staleness\":{}}}",
            m.saturating_sub(version)
        ),
        TraceEvent::WallRead {
            txn,
            target_class,
            segment,
            key,
            anchor,
            bound,
            version,
        } => format!(
            "{{\"txn\":{txn},\"target_class\":{target_class},\"segment\":{segment},\
             \"key\":{key},\"anchor\":{anchor},\"bound\":{bound},\"version\":{version},\
             \"staleness\":{}}}",
            bound.saturating_sub(version)
        ),
        TraceEvent::Reject {
            txn,
            segment,
            key,
            reason,
        } => format!(
            "{{\"txn\":{txn},\"segment\":{segment},\"key\":{key},\"reason\":\"{}\"}}",
            reason.label()
        ),
        TraceEvent::Block {
            txn,
            segment,
            key,
            write,
        } => format!("{{\"txn\":{txn},\"segment\":{segment},\"key\":{key},\"write\":{write}}}"),
        TraceEvent::WallRelease {
            anchor,
            released_at,
        } => format!("{{\"anchor\":{anchor},\"released_at\":{released_at}}}"),
        TraceEvent::GcReclaim {
            watermark,
            reclaimed,
        } => format!("{{\"watermark\":{watermark},\"reclaimed\":{reclaimed}}}"),
        TraceEvent::Backoff { nanos } => format!("{{\"nanos\":{nanos}}}"),
        TraceEvent::WatchdogAbort {
            txn,
            start,
            overdue_micros,
        } => format!("{{\"txn\":{txn},\"start\":{start},\"overdue_micros\":{overdue_micros}}}"),
        TraceEvent::CrashPoint {
            txn,
            op_index,
            fault,
        } => format!(
            "{{\"txn\":{txn},\"op_index\":{op_index},\"fault\":\"{}\"}}",
            fault.label()
        ),
        TraceEvent::RecoveryReplay {
            events,
            redone,
            rolled_back,
            in_flight_aborted,
            high_water_mark,
        } => format!(
            "{{\"events\":{events},\"redone\":{redone},\"rolled_back\":{rolled_back},\
             \"in_flight_aborted\":{in_flight_aborted},\"high_water_mark\":{high_water_mark}}}"
        ),
        TraceEvent::DriftTrip {
            fold,
            score_milli,
            threshold_milli,
            dragger_class,
        } => format!(
            "{{\"fold\":{fold},\"score_milli\":{score_milli},\
             \"threshold_milli\":{threshold_milli},\"dragger_class\":{dragger_class}}}"
        ),
    }
}

/// Render a drained trace (ticket, event) stream as Chrome trace-event
/// JSON, loadable in `chrome://tracing` or the Perfetto UI.
///
/// Tracks: tid 0 is the scheduler (walls, GC, rejects, blocks, chaos,
/// recovery), tid 1 the Protocol C wall readers, tid `2 + class` one
/// track per Protocol A reader class. The global ticket is used as the
/// timestamp (`ts`) — decision *order*, not wall-clock. Watchdog reaps
/// and driver backoffs render as duration (`"ph":"X"`) events with
/// their overdue/sleep time as the duration; everything else is an
/// instant (`"ph":"i"`).
pub fn chrome_trace(events: &[(u64, TraceEvent)]) -> String {
    let mut tids: Vec<u64> = events.iter().map(|(_, e)| event_tid(e)).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, s: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };
    for tid in &tids {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid_name(*tid)
            ),
        );
    }
    for (ticket, ev) in events {
        let tid = event_tid(ev);
        let args = event_args(ev);
        let body = match ev {
            TraceEvent::WatchdogAbort { overdue_micros, .. } => format!(
                "{{\"name\":\"{}\",\"cat\":\"hdd\",\"ph\":\"X\",\"ts\":{ticket},\
                 \"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                ev.kind(),
                (*overdue_micros).max(1)
            ),
            TraceEvent::Backoff { nanos } => format!(
                "{{\"name\":\"{}\",\"cat\":\"hdd\",\"ph\":\"X\",\"ts\":{ticket},\
                 \"dur\":{},\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                ev.kind(),
                (nanos / 1000).max(1)
            ),
            _ => format!(
                "{{\"name\":\"{}\",\"cat\":\"hdd\",\"ph\":\"i\",\"ts\":{ticket},\
                 \"s\":\"t\",\"pid\":1,\"tid\":{tid},\"args\":{args}}}",
                ev.kind()
            ),
        };
        push(&mut out, body);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Track id of the maintenance/time-wall thread in
/// [`flight_chrome_trace`] output; worker `w` renders on track `w + 1`.
const FLIGHT_TID_MAINTENANCE: u64 = 0;

#[inline]
fn flight_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn flight_class_label(class: u32) -> String {
    if class == NO_CLASS {
        "ro".to_string()
    } else {
        format!("c{class}")
    }
}

/// Render an assembled [`FlightLog`] as Chrome trace-event JSON with
/// **nested duration spans and flow arrows along cause edges**:
///
/// * one track per driver worker (tid `worker + 1`), plus tid 0 for
///   the maintenance thread's wall releases;
/// * each flight is an enclosing `"ph":"X"` span (`txn N [terminal]`)
///   with its op service spans and wait spans nested inside (Perfetto
///   nests same-track spans by time containment);
/// * each attributed wait emits a flow arrow (`"ph":"s"` → `"ph":"f"`)
///   from the blocking flight's end (or the unblocking wall release)
///   to the wait span's end — the cause edges, visible as arrows in
///   the Perfetto UI.
///
/// Timestamps are recorder-epoch microseconds (fractional, so the
/// nanosecond clock survives). Output passes [`validate_chrome_trace`].
pub fn flight_chrome_trace(log: &FlightLog) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, s: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };
    let mut tids: Vec<u64> = log
        .flights
        .iter()
        .map(|f| u64::from(f.worker) + 1)
        .collect();
    tids.push(FLIGHT_TID_MAINTENANCE);
    tids.sort_unstable();
    tids.dedup();
    for &tid in &tids {
        let name = if tid == FLIGHT_TID_MAINTENANCE {
            "maintenance / time walls".to_string()
        } else {
            format!("worker {}", tid - 1)
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    for &(anchor, at_ns) in &log.wall_releases {
        push(
            &mut out,
            format!(
                "{{\"name\":\"wall-release\",\"cat\":\"wall\",\"ph\":\"i\",\"ts\":{:.3},\
                 \"s\":\"t\",\"pid\":1,\"tid\":{FLIGHT_TID_MAINTENANCE},\
                 \"args\":{{\"anchor\":{anchor}}}}}",
                flight_us(at_ns)
            ),
        );
    }
    let mut flow_id = 0u64;
    for f in &log.flights {
        let tid = u64::from(f.worker) + 1;
        let terminal = f.terminal.map_or("open", Terminal::label);
        push(
            &mut out,
            format!(
                "{{\"name\":\"txn {} [{terminal}]\",\"cat\":\"flight\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"txn\":{},\"class\":\"{}\",\"worker\":{}}}}}",
                f.txn,
                flight_us(f.admit_ns),
                flight_us(f.total_ns().max(1)),
                f.txn,
                flight_class_label(f.class),
                f.worker
            ),
        );
        for op in &f.ops {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"segment\":{},\"key\":{}}}}}",
                    op.kind.label(),
                    flight_us(op.start_ns),
                    flight_us(op.dur_ns.max(1)),
                    op.segment,
                    op.key
                ),
            );
        }
        for w in &f.waits {
            let wait_end_ns = w.start_ns + w.dur_ns;
            push(
                &mut out,
                format!(
                    "{{\"name\":\"wait: {}\",\"cat\":\"wait\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"cause\":\"{}\",\"slept_ns\":{}}}}}",
                    w.cause.label(),
                    flight_us(w.start_ns),
                    flight_us(w.dur_ns.max(1)),
                    w.cause,
                    w.slept_ns
                ),
            );
            // Cause edge as a flow arrow: source at the unblocking
            // event, sink at the wait span's end.
            let source: Option<(u64, u64)> = match w.cause {
                WaitCause::TxnPending { txn, .. } => {
                    log.flight(txn).map(|h| (u64::from(h.worker) + 1, h.end_ns))
                }
                WaitCause::WallPending { .. } => log
                    .wall_releases
                    .iter()
                    .find(|&&(_, at)| at >= w.start_ns)
                    .map(|&(_, at)| (FLIGHT_TID_MAINTENANCE, at)),
                WaitCause::Unattributed => None,
            };
            if let Some((src_tid, src_ns)) = source {
                flow_id += 1;
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"cause\",\"cat\":\"cause\",\"ph\":\"s\",\"id\":{flow_id},\
                         \"ts\":{:.3},\"pid\":1,\"tid\":{src_tid},\"args\":{{}}}}",
                        flight_us(src_ns)
                    ),
                );
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"cause\",\"cat\":\"cause\",\"ph\":\"f\",\"bp\":\"e\",\
                         \"id\":{flow_id},\"ts\":{:.3},\"pid\":1,\"tid\":{tid},\"args\":{{}}}}",
                        flight_us(wait_end_ns)
                    ),
                );
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Validate Chrome trace JSON shape without a JSON library: the text
/// must open with `{"traceEvents":[`, every brace/bracket must balance
/// outside string literals, and every object directly inside the
/// `traceEvents` array must carry `"ph":`, `"ts"` (or be a metadata
/// record) and `"pid":`. Returns the event count (metadata included).
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let prefix = "{\"traceEvents\":[";
    if !text.starts_with(prefix) {
        return Err(format!("missing {prefix:?} prefix"));
    }
    #[derive(PartialEq)]
    enum Frame {
        Obj,
        Arr,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut events = 0usize;
    let mut event_start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if stack.len() == 2 && stack[0] == Frame::Obj && stack[1] == Frame::Arr {
                    event_start = Some(i);
                }
                stack.push(Frame::Obj);
            }
            '[' => stack.push(Frame::Arr),
            '}' => {
                if stack.pop() != Some(Frame::Obj) {
                    return Err(format!("unbalanced '}}' at byte {i}"));
                }
                if stack.len() == 2 {
                    if let Some(start) = event_start.take() {
                        let body = &text[start..=i];
                        if !body.contains("\"ph\":") {
                            return Err(format!("event without \"ph\" at byte {start}"));
                        }
                        if !body.contains("\"pid\":") {
                            return Err(format!("event without \"pid\" at byte {start}"));
                        }
                        if !body.contains("\"ts\":") && !body.contains("\"ph\":\"M\"") {
                            return Err(format!("non-metadata event without \"ts\" at {start}"));
                        }
                        events += 1;
                    }
                }
            }
            ']' if stack.pop() != Some(Frame::Arr) => {
                return Err(format!("unbalanced ']' at byte {i}"));
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string literal".to_string());
    }
    if !stack.is_empty() {
        return Err(format!("{} unclosed delimiters", stack.len()));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauges::{GaugeBoard, WALL_READER};
    use crate::trace::{FaultCode, RejectReason};

    #[test]
    fn prometheus_golden_minimal() {
        // Byte-exact output for a fixed minimal input is part of the
        // contract: exporters must not drift silently.
        let obs = ObsSnapshot::default();
        let gauges = GaugeSnapshot::default();
        let text = prometheus_text(&[("committed", 7)], &obs, &gauges);
        let expected_head = "# TYPE hdd_committed_total counter\n\
                             hdd_committed_total 7\n\
                             # TYPE hdd_trace_recorded_total counter\n\
                             hdd_trace_recorded_total 0\n\
                             # TYPE hdd_trace_dropped_total counter\n\
                             hdd_trace_dropped_total 0\n\
                             # TYPE hdd_commit_latency_ns summary\n\
                             hdd_commit_latency_ns{quantile=\"0.5\"} 0\n\
                             hdd_commit_latency_ns{quantile=\"0.95\"} 0\n\
                             hdd_commit_latency_ns{quantile=\"0.99\"} 0\n\
                             hdd_commit_latency_ns_sum 0\n\
                             hdd_commit_latency_ns_count 0\n";
        assert!(
            text.starts_with(expected_head),
            "golden head drifted:\n{text}"
        );
        assert!(text.contains("# TYPE hdd_driver_offered gauge\nhdd_driver_offered 0\n"));
        let expected_tail = "# TYPE hdd_wal_fsync_batches_total counter\n\
                             hdd_wal_fsync_batches_total 0\n\
                             # TYPE hdd_recovery_anomalies_total counter\n\
                             hdd_recovery_anomalies_total 0\n\
                             # TYPE hdd_wal_frames gauge\n\
                             hdd_wal_frames 0\n\
                             # TYPE hdd_wal_bytes gauge\n\
                             hdd_wal_bytes 0\n\
                             # TYPE hdd_recovery_replayed gauge\n\
                             hdd_recovery_replayed 0\n\
                             # TYPE hdd_wal_fsync_ns summary\n\
                             hdd_wal_fsync_ns{quantile=\"0.5\"} 0\n\
                             hdd_wal_fsync_ns{quantile=\"0.95\"} 0\n\
                             hdd_wal_fsync_ns{quantile=\"0.99\"} 0\n\
                             hdd_wal_fsync_ns_sum 0\n\
                             hdd_wal_fsync_ns_count 0\n";
        assert!(
            text.ends_with(expected_tail),
            "golden tail drifted:\n{text}"
        );
        let stats = validate_prometheus(&text).expect("self-validates");
        assert_eq!(stats.families, 1 + 2 + 5 + 15 + 6);
    }

    #[test]
    fn prometheus_full_board_round_trips_through_validator() {
        let board = GaugeBoard::new();
        board.configure(2, 3);
        board.set_class(0, 3, 1, 0);
        board.set_wall(90, 95, 88, 12);
        board.set_segment_wall(2, 88);
        board.record_staleness(1, 0, 17);
        board.record_staleness(WALL_READER, 2, 40);
        let obs = {
            let o = crate::Obs::new();
            o.commit_latency.record(1_000);
            o.commit_latency.record(2_000);
            o.snapshot()
        };
        let text = prometheus_text(
            &[("offered", 100), ("committed", 96)],
            &obs,
            &board.snapshot(),
        );
        let stats = validate_prometheus(&text).expect("validates");
        assert!(stats.families >= 30, "{stats:?}");
        assert!(text.contains("hdd_class_i_old{class=\"0\"} 3"));
        // The wall's per-class components and per-segment projection
        // must reach the text format byte-exactly (they were long in
        // the JSON snapshot; this pins the exposition side too).
        assert!(text.contains(
            "# TYPE hdd_class_wall_component gauge\n\
             hdd_class_wall_component{class=\"0\"} 0\n\
             hdd_class_wall_component{class=\"1\"} 0\n"
        ));
        assert!(text.contains(
            "# TYPE hdd_segment_wall gauge\n\
             hdd_segment_wall{segment=\"0\"} 0\n\
             hdd_segment_wall{segment=\"1\"} 0\n\
             hdd_segment_wall{segment=\"2\"} 88\n"
        ));
        assert!(text
            .contains("hdd_read_staleness_ticks{reader=\"c1\",segment=\"0\",quantile=\"0.5\"} 17"));
        assert!(text
            .contains("hdd_read_staleness_ticks{reader=\"wall\",segment=\"2\",quantile=\"0.99\"}"));
        assert!(text.contains("hdd_commit_latency_ns_count 2"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_input() {
        for (bad, why) in [
            ("hdd_x 1\n", "sample before TYPE"),
            (
                "# TYPE hdd_x counter\n# TYPE hdd_x counter\nhdd_x 1\n",
                "duplicate TYPE",
            ),
            ("# TYPE hdd_x counter\nhdd_x{l=1} 1\n", "unquoted label"),
            ("# TYPE hdd_x counter\nhdd_x one\n", "non-numeric value"),
            ("# TYPE hdd_x widget\nhdd_x 1\n", "unknown type"),
            ("# TYPE hdd_x counter\nhdd_x{l=\"v\"\n", "unclosed braces"),
            ("# TYPE 9bad counter\n", "bad family name"),
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted: {why}");
        }
        let ok = "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 1\n";
        assert_eq!(
            validate_prometheus(ok).unwrap(),
            PromStats {
                families: 1,
                samples: 3
            }
        );
    }

    #[test]
    fn chrome_trace_golden_minimal() {
        let events = vec![
            (
                3u64,
                TraceEvent::WallRelease {
                    anchor: 30,
                    released_at: 31,
                },
            ),
            (5u64, TraceEvent::Backoff { nanos: 2048 }),
        ];
        let text = chrome_trace(&events);
        let expected = "{\"traceEvents\":[\
             {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"scheduler\"}},\
             {\"name\":\"wall-release\",\"cat\":\"hdd\",\"ph\":\"i\",\"ts\":3,\
             \"s\":\"t\",\"pid\":1,\"tid\":0,\"args\":{\"anchor\":30,\"released_at\":31}},\
             {\"name\":\"backoff\",\"cat\":\"hdd\",\"ph\":\"X\",\"ts\":5,\
             \"dur\":2,\"pid\":1,\"tid\":0,\"args\":{\"nanos\":2048}}\
             ],\"displayTimeUnit\":\"ms\"}";
        assert_eq!(text, expected);
        assert_eq!(validate_chrome_trace(&text).unwrap(), 3);
    }

    #[test]
    fn chrome_trace_assigns_per_class_tracks() {
        let events = vec![
            (
                0u64,
                TraceEvent::CrossRead {
                    txn: 1,
                    reader_class: 2,
                    target_class: 0,
                    segment: 0,
                    key: 7,
                    m: 10,
                    bound: 8,
                    version: 5,
                },
            ),
            (
                1u64,
                TraceEvent::WallRead {
                    txn: 2,
                    target_class: 1,
                    segment: 1,
                    key: 3,
                    anchor: 20,
                    bound: 18,
                    version: 9,
                },
            ),
            (
                2u64,
                TraceEvent::Reject {
                    txn: 3,
                    segment: 0,
                    key: 1,
                    reason: RejectReason::WriteTooLate,
                },
            ),
            (
                3u64,
                TraceEvent::WatchdogAbort {
                    txn: 5,
                    start: 40,
                    overdue_micros: 1500,
                },
            ),
            (
                4u64,
                TraceEvent::CrashPoint {
                    txn: 6,
                    op_index: 3,
                    fault: FaultCode::Stall,
                },
            ),
        ];
        let text = chrome_trace(&events);
        // 3 tracks (scheduler, wall readers, class 2) + 5 events.
        assert_eq!(validate_chrome_trace(&text).unwrap(), 8);
        assert!(text.contains("\"name\":\"class 2 readers (protocol A)\""));
        assert!(text.contains("\"name\":\"wall readers (protocol C)\""));
        assert!(text.contains("\"staleness\":5")); // 10 - 5
        assert!(text.contains("\"staleness\":9")); // 18 - 9
        assert!(text.contains("\"ph\":\"X\",\"ts\":3,\"dur\":1500"));
        assert!(text.contains("\"fault\":\"stall\""));
    }

    #[test]
    fn prometheus_rejection_breakdown_renders_labelled_family() {
        let obs = ObsSnapshot::default();
        let gauges = GaugeSnapshot::default();
        let counters = [
            ("committed", 90u64),
            ("rej_write_too_late", 5),
            ("rej_read_too_late", 2),
            ("rej_deadlock_victim", 0),
            ("rej_watchdog_abort", 3),
        ];
        let text = prometheus_text(&counters, &obs, &gauges);
        let expected_block = "# TYPE hdd_rejections_by_reason_total counter\n\
             hdd_rejections_by_reason_total{reason=\"write-too-late\"} 5\n\
             hdd_rejections_by_reason_total{reason=\"read-too-late\"} 2\n\
             hdd_rejections_by_reason_total{reason=\"deadlock-victim\"} 0\n\
             hdd_rejections_by_reason_total{reason=\"watchdog-abort\"} 3\n";
        assert!(
            text.contains(expected_block),
            "labelled rejection family drifted:\n{text}"
        );
        let stats = validate_prometheus(&text).expect("self-validates");
        // 5 plain counters + the labelled family + 2 trace + 5 summaries
        // + 15 scalar gauges + 6 durability families.
        assert_eq!(stats.families, 5 + 1 + 2 + 5 + 15 + 6);
        // Without rej_* counters the family must not appear (golden
        // minimal output is unchanged).
        let bare = prometheus_text(&[("committed", 7)], &obs, &gauges);
        assert!(!bare.contains("hdd_rejections_by_reason_total"));
    }

    #[test]
    fn flight_chrome_trace_nests_spans_and_draws_cause_arrows() {
        use crate::span::{OpSpan, SpanKind, TxnFlight, WaitSpan};
        let log = FlightLog {
            flights: vec![
                TxnFlight {
                    txn: 1,
                    class: 0,
                    worker: 0,
                    admit_ns: 1_000,
                    end_ns: 9_000,
                    terminal: Some(Terminal::Committed),
                    ops: vec![OpSpan {
                        kind: SpanKind::Read,
                        segment: 2,
                        key: 7,
                        start_ns: 1_500,
                        dur_ns: 400,
                    }],
                    waits: vec![
                        WaitSpan {
                            start_ns: 2_000,
                            dur_ns: 3_000,
                            slept_ns: 1_000,
                            cause: WaitCause::TxnPending { txn: 2, class: 1 },
                        },
                        WaitSpan {
                            start_ns: 6_000,
                            dur_ns: 1_000,
                            slept_ns: 0,
                            cause: WaitCause::WallPending { anchor: 4 },
                        },
                    ],
                },
                TxnFlight {
                    txn: 2,
                    class: 1,
                    worker: 1,
                    admit_ns: 500,
                    end_ns: 4_800,
                    terminal: Some(Terminal::Aborted),
                    ops: vec![],
                    waits: vec![],
                },
            ],
            wall_releases: vec![(4, 6_800)],
            open: 0,
        };
        let text = flight_chrome_trace(&log);
        let n = validate_chrome_trace(&text).expect("validates");
        // 3 thread metadata + 1 wall release + 2 flights + 1 op + 2
        // waits + 2 flow arrows per attributed wait (2 attributed).
        assert_eq!(n, 3 + 1 + 2 + 1 + 2 + 4);
        assert!(text.contains("\"name\":\"txn 1 [committed]\""));
        assert!(text.contains("\"name\":\"txn 2 [aborted]\""));
        assert!(text.contains("\"name\":\"wait: txn-pending\""));
        assert!(text.contains("\"name\":\"wait: wall-pending\""));
        assert!(text.contains("\"ph\":\"s\""), "flow start missing");
        assert!(
            text.contains("\"ph\":\"f\",\"bp\":\"e\""),
            "flow finish missing"
        );
        assert!(text.contains("\"name\":\"worker 1\""));
        assert!(text.contains("\"name\":\"maintenance / time walls\""));
        // txn 1's first wait ends at 5 µs, caused by txn 2 ending at
        // 4.8 µs on worker 1's track.
        assert!(text.contains("\"ph\":\"s\",\"id\":1,\"ts\":4.800,\"pid\":1,\"tid\":2"));
        assert!(
            text.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":1,\"ts\":5.000,\"pid\":1,\"tid\":1")
        );
        // Wall edge flows from the release instant on the maintenance
        // track.
        assert!(text.contains("\"ph\":\"s\",\"id\":2,\"ts\":6.800,\"pid\":1,\"tid\":0"));
        assert!(flight_chrome_trace(&FlightLog::default()).contains("maintenance"));
        assert!(validate_chrome_trace(&flight_chrome_trace(&FlightLog::default())).is_ok());
    }

    #[test]
    fn prometheus_drift_families_render_only_when_configured() {
        use crate::drift::DriftBoard;
        let obs = ObsSnapshot::default();
        let gauges = GaugeSnapshot::default();
        // Unconfigured sketch: byte-identical to the drift-free text.
        let bare = DriftBoard::new();
        assert_eq!(
            prometheus_text_full(&[("committed", 7)], &obs, &gauges, Some(&bare.snapshot())),
            prometheus_text(&[("committed", 7)], &obs, &gauges)
        );
        // Configured sketch: drift + wall-drag families appear and the
        // whole exposition still self-validates.
        let board = DriftBoard::new();
        board.configure(2, 3);
        board.set_enabled(true);
        for _ in 0..20 {
            board.record_access(0, 1);
            board.record_edge(1, 0);
        }
        board.note_begin(0);
        board.note_commit(0);
        board.note_wall_floor(Some(1), 10);
        board.note_wall_floor(Some(0), 25);
        board.fold();
        let d = board.snapshot();
        let text = prometheus_text_full(&[("committed", 7)], &obs, &gauges, Some(&d));
        let stats = validate_prometheus(&text).expect("self-validates");
        // Drift-free families + 4 drift gauges + 2 drift counters + 2
        // per-class counters + blame counter + drag summary.
        assert_eq!(stats.families, 1 + 2 + 5 + 15 + 6 + 4 + 2 + 2 + 1 + 1);
        assert!(text.contains("# TYPE hdd_drift_score gauge\nhdd_drift_score 0.000\n"));
        assert!(text.contains("hdd_drift_folds_total 1"));
        assert!(text.contains("hdd_class_begun_total{class=\"c0\"} 1"));
        assert!(text.contains("hdd_class_committed_total{class=\"wall\"} 0"));
        assert!(text.contains("hdd_wall_drag_blame_total{class=\"1\"} 1"));
        assert!(text.contains("hdd_wall_drag_ticks_count 1"));
        assert!(text.contains("hdd_drift_tripped 0"));
    }

    #[test]
    fn chrome_trace_renders_drift_trip_instants() {
        let events = vec![(
            9u64,
            TraceEvent::DriftTrip {
                fold: 4,
                score_milli: 500,
                threshold_milli: 250,
                dragger_class: 2,
            },
        )];
        let text = chrome_trace(&events);
        assert_eq!(validate_chrome_trace(&text).unwrap(), 2);
        assert!(text.contains("\"name\":\"drift-trip\""));
        assert!(text.contains("\"ph\":\"i\",\"ts\":9"));
        assert!(text.contains("\"score_milli\":500"));
    }

    #[test]
    fn chrome_validator_rejects_malformed_input() {
        assert!(validate_chrome_trace("[]").is_err(), "wrong prefix");
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"i\"}").is_err(),
            "unbalanced"
        );
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"pid\":1,\"ts\":0}],\"x\":0}").is_err(),
            "event without ph"
        );
        // Braces inside strings must not confuse the scanner.
        let tricky = "{\"traceEvents\":[{\"name\":\"a{b}c\",\"ph\":\"M\",\"pid\":1,\
                      \"tid\":0,\"args\":{\"name\":\"}{\"}}],\"displayTimeUnit\":\"ms\"}";
        assert_eq!(validate_chrome_trace(tricky).unwrap(), 1);
        assert!(validate_chrome_trace(&chrome_trace(&[])).is_ok());
    }
}
