//! Live gauge board: the hierarchy's control state as relaxed atomics.
//!
//! Histograms ([`crate::hist`]) answer "how was the cost distributed
//! over the run?"; the [`GaugeBoard`] answers "what is the scheduler
//! doing *right now*?" — which class is dragging `I_old(m)` and pinning
//! the time wall, how far behind `now` the wall floor sits, how deep
//! the MV store's version chains have grown, how much GC backlog is
//! pending. Every cell is a plain `AtomicU64` written with `Relaxed`
//! stores from the scheduler's maintenance tick (and O(1) histogram
//! records from the read hot path), so a dashboard thread can sample
//! the whole board without ever contending with workers.
//!
//! The board has two tiers:
//!
//! * **global cells** — always present, writable before (or without)
//!   [`GaugeBoard::configure`], so drivers can publish progress even
//!   for schedulers that never dimension the board;
//! * **dimensioned cells** — per-class, per-segment and per
//!   (reader class, source segment) staleness histograms, allocated
//!   once by `configure` (first caller wins; the HDD scheduler calls it
//!   at construction with the hierarchy's shape).
//!
//! The headline signal is **cross-read staleness**: on every Protocol A
//! or Protocol C read served from another class, the scheduler records
//! `read_ts − version_ts` into the `(reader class, source segment)`
//! cell ([`GaugeBoard::record_staleness`]). Protocol C wall readers are
//! not a hierarchy class, so they get a synthetic reader row addressed
//! by [`WALL_READER`]. Staleness is strictly positive by Protocol A/C
//! correctness: the served version is below the reader's bound, and the
//! bound never exceeds the reader's start timestamp (DESIGN.md §10).

use mc::sync::{AtomicU64, OnceLock, Ordering};

use crate::hist::{Histogram, HistogramSnapshot};

/// Synthetic reader row for Protocol C (time-wall) readers, which are
/// ad-hoc read-only transactions outside every hierarchy class.
pub const WALL_READER: u32 = u32::MAX;

/// Dimensioned (per-class / per-segment) cells, allocated once.
#[derive(Debug)]
struct Dims {
    n_classes: u32,
    n_segments: u32,
    /// `I_old(now)` per class — the oldest-running interval count that
    /// feeds Protocol A bounds.
    i_old: Vec<AtomicU64>,
    /// Running (unfinished) registered transactions per class.
    active: Vec<AtomicU64>,
    /// Registry settled-cursor lag per class: intervals not yet behind
    /// the settled prefix (a scan-cost leading indicator).
    settled_lag: Vec<AtomicU64>,
    /// Latest released time-wall component per class.
    wall_component: Vec<AtomicU64>,
    /// Latest released wall timestamp per *segment* (its class's
    /// component).
    segment_wall: Vec<AtomicU64>,
    /// Staleness histograms, `(n_classes + 1) × n_segments`; the last
    /// row is the [`WALL_READER`] row.
    staleness: Vec<Histogram>,
}

impl Dims {
    #[inline]
    fn staleness_index(&self, reader: u32, segment: u32) -> Option<usize> {
        let row = if reader == WALL_READER {
            self.n_classes
        } else if reader < self.n_classes {
            reader
        } else {
            return None;
        };
        if segment >= self.n_segments {
            return None;
        }
        Some((row as usize) * (self.n_segments as usize) + segment as usize)
    }
}

/// The live gauge board (see module docs).
///
/// All writes are `Relaxed` stores/`fetch_add`s; readers get a
/// tear-free value per cell but no cross-cell consistency — exactly
/// what a ~4 Hz dashboard needs and nothing a proof should lean on.
#[derive(Debug, Default)]
pub struct GaugeBoard {
    // --- global cells (always available) ---
    clock_now: AtomicU64,
    wall_anchor: AtomicU64,
    wall_released_at: AtomicU64,
    wall_floor: AtomicU64,
    wall_lag: AtomicU64,
    active_txns: AtomicU64,
    registry_intervals: AtomicU64,
    registry_settled_lag: AtomicU64,
    store_versions: AtomicU64,
    store_granules: AtomicU64,
    store_max_chain: AtomicU64,
    gc_watermark: AtomicU64,
    gc_backlog: AtomicU64,
    driver_claimed: AtomicU64,
    driver_offered: AtomicU64,
    // --- durability cells (always available, like driver progress) ---
    wal_batches: AtomicU64,
    wal_frames: AtomicU64,
    wal_bytes: AtomicU64,
    recovery_replayed: AtomicU64,
    recovery_anomalies: AtomicU64,
    fsync_ns: Histogram,
    // --- dimensioned cells ---
    dims: OnceLock<Dims>,
}

impl GaugeBoard {
    /// A fresh, undimensioned board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the per-class / per-segment cells. Idempotent and
    /// first-wins: a second call (e.g. a rebuilt scheduler sharing the
    /// same `Metrics`) is a no-op even with different dimensions, so
    /// histogram references can never dangle.
    pub fn configure(&self, n_classes: u32, n_segments: u32) {
        let _ = self.dims.get_or_init(|| Dims {
            n_classes,
            n_segments,
            i_old: (0..n_classes).map(|_| AtomicU64::new(0)).collect(),
            active: (0..n_classes).map(|_| AtomicU64::new(0)).collect(),
            settled_lag: (0..n_classes).map(|_| AtomicU64::new(0)).collect(),
            wall_component: (0..n_classes).map(|_| AtomicU64::new(0)).collect(),
            segment_wall: (0..n_segments).map(|_| AtomicU64::new(0)).collect(),
            staleness: (0..(n_classes as usize + 1) * n_segments as usize)
                .map(|_| Histogram::new())
                .collect(),
        });
    }

    /// True once [`GaugeBoard::configure`] has run.
    pub fn is_configured(&self) -> bool {
        self.dims.get().is_some()
    }

    /// Record one cross-read staleness sample (`read_ts − version_ts`
    /// in clock ticks) for `(reader, segment)`; `reader` is a class
    /// index or [`WALL_READER`]. O(1): one bucket `fetch_add` plus the
    /// histogram summary cells, all relaxed. Out-of-range coordinates
    /// and an unconfigured board drop the sample silently — gauges are
    /// diagnostics, never control flow.
    #[inline]
    pub fn record_staleness(&self, reader: u32, segment: u32, staleness: u64) {
        if let Some(d) = self.dims.get() {
            if let Some(i) = d.staleness_index(reader, segment) {
                d.staleness[i].record(staleness);
            }
        }
    }

    /// Publish the scheduler clock.
    #[inline]
    pub fn set_clock(&self, now: u64) {
        // ordering: Relaxed — independent gauge level; the board contract
        // (struct docs) promises per-cell tear-freedom only.
        self.clock_now.store(now, Ordering::Relaxed);
    }

    /// Publish the latest released time wall: anchor timestamp, release
    /// tick, floor (min component) and wall lag (`now − floor`).
    #[inline]
    pub fn set_wall(&self, anchor: u64, released_at: u64, floor: u64, lag: u64) {
        // ordering: Relaxed — gauge levels; no cross-cell consistency is
        // promised, a sampler may see the cells mid-update.
        self.wall_anchor.store(anchor, Ordering::Relaxed);
        self.wall_released_at.store(released_at, Ordering::Relaxed); // ordering: gauge level, see fn-top note
        self.wall_floor.store(floor, Ordering::Relaxed); // ordering: gauge level, see fn-top note
        self.wall_lag.store(lag, Ordering::Relaxed); // ordering: gauge level, see fn-top note
    }

    /// Publish one class's live signals.
    #[inline]
    pub fn set_class(&self, class: u32, i_old: u64, active: u64, settled_lag: u64) {
        if let Some(d) = self.dims.get() {
            if let Some(i) = usize::try_from(class).ok().filter(|&i| i < d.i_old.len()) {
                // ordering: Relaxed — per-class gauge levels, see set_wall.
                d.i_old[i].store(i_old, Ordering::Relaxed);
                d.active[i].store(active, Ordering::Relaxed); // ordering: gauge level, see fn-top note
                d.settled_lag[i].store(settled_lag, Ordering::Relaxed); // ordering: gauge level, see fn-top note
            }
        }
    }

    /// Publish one class's latest released wall component.
    #[inline]
    pub fn set_wall_component(&self, class: u32, ts: u64) {
        if let Some(d) = self.dims.get() {
            if let Some(c) = d.wall_component.get(class as usize) {
                // ordering: Relaxed — gauge level, see set_wall.
                c.store(ts, Ordering::Relaxed);
            }
        }
    }

    /// Publish one segment's latest released wall timestamp.
    #[inline]
    pub fn set_segment_wall(&self, segment: u32, ts: u64) {
        if let Some(d) = self.dims.get() {
            if let Some(c) = d.segment_wall.get(segment as usize) {
                // ordering: Relaxed — gauge level, see set_wall.
                c.store(ts, Ordering::Relaxed);
            }
        }
    }

    /// Publish registry totals: running transactions, live intervals,
    /// total settled-cursor lag.
    #[inline]
    pub fn set_activity(&self, active: u64, intervals: u64, settled_lag: u64) {
        // ordering: Relaxed — gauge levels, see set_wall.
        self.active_txns.store(active, Ordering::Relaxed);
        self.registry_intervals.store(intervals, Ordering::Relaxed); // ordering: gauge level, see fn-top note
        self.registry_settled_lag
            .store(settled_lag, Ordering::Relaxed); // ordering: gauge level, see fn-top note
    }

    /// Publish MV-store shape: live versions, granules, deepest version
    /// chain, and GC backlog (versions above one-per-granule).
    #[inline]
    pub fn set_store(&self, versions: u64, granules: u64, max_chain: u64, backlog: u64) {
        // ordering: Relaxed — gauge levels, see set_wall.
        self.store_versions.store(versions, Ordering::Relaxed);
        self.store_granules.store(granules, Ordering::Relaxed); // ordering: gauge level, see fn-top note
        self.store_max_chain.store(max_chain, Ordering::Relaxed); // ordering: gauge level, see fn-top note
        self.gc_backlog.store(backlog, Ordering::Relaxed); // ordering: gauge level, see fn-top note
    }

    /// Publish the last GC prune watermark.
    #[inline]
    pub fn set_gc_watermark(&self, watermark: u64) {
        // ordering: Relaxed — gauge level, see set_wall.
        self.gc_watermark.store(watermark, Ordering::Relaxed);
    }

    /// Publish driver progress: programs claimed out of programs
    /// offered (works on an unconfigured board, for baselines).
    #[inline]
    pub fn set_driver_progress(&self, claimed: u64, offered: u64) {
        // ordering: Relaxed — gauge levels, see set_wall.
        self.driver_claimed.store(claimed, Ordering::Relaxed);
        self.driver_offered.store(offered, Ordering::Relaxed); // ordering: gauge level, see fn-top note
    }

    /// Record one durable group-commit batch: its frame count and byte
    /// size accumulate (occupancy gauges), and the write+fsync latency
    /// lands in the fsync histogram. Called once per batch by the
    /// submitter that led it.
    #[inline]
    pub fn record_wal_batch(&self, frames: u64, bytes: u64, fsync_ns: u64) {
        // ordering: Relaxed — monotone counters sampled by a dashboard;
        // no cross-cell consistency is promised (see struct docs).
        self.wal_batches.fetch_add(1, Ordering::Relaxed);
        self.wal_frames.fetch_add(frames, Ordering::Relaxed); // ordering: gauge counter, see fn-top note
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed); // ordering: gauge counter, see fn-top note
        self.fsync_ns.record(fsync_ns);
    }

    /// Publish recovery replay progress: log frames replayed and
    /// malformed frames skipped (from `mvstore::RecoveryAnomalies`).
    #[inline]
    pub fn set_recovery_progress(&self, replayed: u64, anomalies: u64) {
        // ordering: Relaxed — gauge levels, see set_wall.
        self.recovery_replayed.store(replayed, Ordering::Relaxed);
        self.recovery_anomalies.store(anomalies, Ordering::Relaxed); // ordering: gauge level, see fn-top note
    }

    /// Copy the whole board. Staleness cells are included only when
    /// non-empty (most (reader, segment) pairs never cross-read).
    pub fn snapshot(&self) -> GaugeSnapshot {
        // ordering: Relaxed — dashboard sampling; each cell is tear-free
        // on its own, cross-cell skew is documented and acceptable.
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut snap = GaugeSnapshot {
            configured: false,
            n_classes: 0,
            n_segments: 0,
            clock_now: g(&self.clock_now),
            wall_anchor: g(&self.wall_anchor),
            wall_released_at: g(&self.wall_released_at),
            wall_floor: g(&self.wall_floor),
            wall_lag: g(&self.wall_lag),
            active_txns: g(&self.active_txns),
            registry_intervals: g(&self.registry_intervals),
            registry_settled_lag: g(&self.registry_settled_lag),
            store_versions: g(&self.store_versions),
            store_granules: g(&self.store_granules),
            store_max_chain: g(&self.store_max_chain),
            gc_watermark: g(&self.gc_watermark),
            gc_backlog: g(&self.gc_backlog),
            driver_claimed: g(&self.driver_claimed),
            driver_offered: g(&self.driver_offered),
            wal_batches: g(&self.wal_batches),
            wal_frames: g(&self.wal_frames),
            wal_bytes: g(&self.wal_bytes),
            recovery_replayed: g(&self.recovery_replayed),
            recovery_anomalies: g(&self.recovery_anomalies),
            fsync_ns: self.fsync_ns.snapshot(),
            classes: Vec::new(),
            segment_walls: Vec::new(),
            staleness: Vec::new(),
        };
        if let Some(d) = self.dims.get() {
            snap.configured = true;
            snap.n_classes = d.n_classes;
            snap.n_segments = d.n_segments;
            snap.classes = (0..d.n_classes as usize)
                .map(|i| ClassGauges {
                    class: i as u32,
                    i_old: g(&d.i_old[i]),
                    active: g(&d.active[i]),
                    settled_lag: g(&d.settled_lag[i]),
                    wall_component: g(&d.wall_component[i]),
                })
                .collect();
            snap.segment_walls = d.segment_wall.iter().map(g).collect();
            for row in 0..=d.n_classes {
                for seg in 0..d.n_segments {
                    let h = &d.staleness[(row as usize) * (d.n_segments as usize) + seg as usize];
                    if h.count() > 0 {
                        snap.staleness.push(StalenessCell {
                            reader: if row == d.n_classes { WALL_READER } else { row },
                            segment: seg,
                            hist: h.snapshot(),
                        });
                    }
                }
            }
        }
        snap
    }

    /// Zero every cell (staleness histograms included); the board stays
    /// configured.
    pub fn reset(&self) {
        for c in [
            &self.clock_now,
            &self.wall_anchor,
            &self.wall_released_at,
            &self.wall_floor,
            &self.wall_lag,
            &self.active_txns,
            &self.registry_intervals,
            &self.registry_settled_lag,
            &self.store_versions,
            &self.store_granules,
            &self.store_max_chain,
            &self.gc_watermark,
            &self.gc_backlog,
            &self.driver_claimed,
            &self.driver_offered,
            &self.wal_batches,
            &self.wal_frames,
            &self.wal_bytes,
            &self.recovery_replayed,
            &self.recovery_anomalies,
        ] {
            // ordering: Relaxed — gauge reset between phases; racing
            // setters land on either side, both acceptable.
            c.store(0, Ordering::Relaxed);
        }
        self.fsync_ns.reset();
        if let Some(d) = self.dims.get() {
            for v in [&d.i_old, &d.active, &d.settled_lag, &d.wall_component] {
                for c in v {
                    // ordering: Relaxed — gauge reset, see above.
                    c.store(0, Ordering::Relaxed);
                }
            }
            for c in &d.segment_wall {
                // ordering: Relaxed — gauge reset, see above.
                c.store(0, Ordering::Relaxed);
            }
            for h in &d.staleness {
                h.reset();
            }
        }
    }
}

/// One class's row in a [`GaugeSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassGauges {
    /// Class index.
    pub class: u32,
    /// `I_old(now)` — intervals at or before the oldest running start.
    pub i_old: u64,
    /// Running registered transactions.
    pub active: u64,
    /// Intervals not yet behind the settled cursor.
    pub settled_lag: u64,
    /// Latest released wall component for this class.
    pub wall_component: u64,
}

/// One non-empty (reader, source segment) staleness cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StalenessCell {
    /// Reader class index, or [`WALL_READER`] for Protocol C readers.
    pub reader: u32,
    /// Source segment index.
    pub segment: u32,
    /// Distribution of `read_ts − version_ts` in clock ticks.
    pub hist: HistogramSnapshot,
}

impl StalenessCell {
    /// Human/exporter label for the reader row (`"c3"` or `"wall"`).
    pub fn reader_label(&self) -> String {
        if self.reader == WALL_READER {
            "wall".to_string()
        } else {
            format!("c{}", self.reader)
        }
    }
}

/// A point-in-time copy of the whole [`GaugeBoard`].
#[derive(Debug, Clone, Default)]
pub struct GaugeSnapshot {
    /// Whether the dimensioned cells were allocated.
    pub configured: bool,
    /// Hierarchy class count (0 when unconfigured).
    pub n_classes: u32,
    /// Segment count (0 when unconfigured).
    pub n_segments: u32,
    /// Scheduler clock at the last maintenance refresh.
    pub clock_now: u64,
    /// Latest released wall's anchor timestamp.
    pub wall_anchor: u64,
    /// Tick at which the latest wall was released.
    pub wall_released_at: u64,
    /// Minimum wall component (the conservative read floor).
    pub wall_floor: u64,
    /// `clock_now − wall_floor`: how stale the freshest conservative
    /// wall read would be.
    pub wall_lag: u64,
    /// Running registered transactions, all classes.
    pub active_txns: u64,
    /// Live activity-registry intervals, all classes.
    pub registry_intervals: u64,
    /// Total settled-cursor lag, all classes.
    pub registry_settled_lag: u64,
    /// Live versions in the MV store.
    pub store_versions: u64,
    /// Granules in the MV store.
    pub store_granules: u64,
    /// Deepest version chain.
    pub store_max_chain: u64,
    /// Last GC prune watermark.
    pub gc_watermark: u64,
    /// Versions above one-per-granule (reclaimable upper bound).
    pub gc_backlog: u64,
    /// Programs claimed by driver workers.
    pub driver_claimed: u64,
    /// Programs offered to the driver.
    pub driver_offered: u64,
    /// Durable group-commit batches written.
    pub wal_batches: u64,
    /// Frames carried by those batches (occupancy = frames / batches).
    pub wal_frames: u64,
    /// Bytes carried by those batches.
    pub wal_bytes: u64,
    /// Log frames replayed by the last recovery pass.
    pub recovery_replayed: u64,
    /// Malformed frames the last recovery pass skipped.
    pub recovery_anomalies: u64,
    /// Distribution of per-batch write+fsync latency (nanoseconds).
    pub fsync_ns: HistogramSnapshot,
    /// Per-class rows (empty when unconfigured).
    pub classes: Vec<ClassGauges>,
    /// Latest wall timestamp per segment (empty when unconfigured).
    pub segment_walls: Vec<u64>,
    /// Non-empty staleness cells.
    pub staleness: Vec<StalenessCell>,
}

impl GaugeSnapshot {
    /// Interval view against an `earlier` snapshot of the same board:
    /// instantaneous gauges keep their current values (they are levels,
    /// not counters), while each staleness cell becomes the saturating
    /// [`HistogramSnapshot::delta`] of its counterpart — cells absent
    /// from `earlier` pass through unchanged, and cells whose delta is
    /// empty are dropped. Like `MetricsSnapshot::delta`, this never
    /// wraps across a reset/resume.
    pub fn delta(&self, earlier: &GaugeSnapshot) -> GaugeSnapshot {
        let mut d = self.clone();
        d.staleness = self
            .staleness
            .iter()
            .filter_map(|cell| {
                let prev = earlier
                    .staleness
                    .iter()
                    .find(|p| p.reader == cell.reader && p.segment == cell.segment);
                let hist = match prev {
                    Some(p) => cell.hist.delta(&p.hist),
                    None => cell.hist.clone(),
                };
                (!hist.is_empty()).then_some(StalenessCell {
                    reader: cell.reader,
                    segment: cell.segment,
                    hist,
                })
            })
            .collect();
        d
    }

    /// The staleness cell for `(reader, segment)` if it recorded
    /// anything.
    pub fn staleness_for(&self, reader: u32, segment: u32) -> Option<&StalenessCell> {
        self.staleness
            .iter()
            .find(|c| c.reader == reader && c.segment == segment)
    }

    /// Hand-rolled JSON object (no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"configured\": {}, \"n_classes\": {}, \"n_segments\": {}, \
             \"clock_now\": {}, \"wall_anchor\": {}, \"wall_released_at\": {}, \
             \"wall_floor\": {}, \"wall_lag\": {}, \"active_txns\": {}, \
             \"registry_intervals\": {}, \"registry_settled_lag\": {}, \
             \"store_versions\": {}, \"store_granules\": {}, \"store_max_chain\": {}, \
             \"gc_watermark\": {}, \"gc_backlog\": {}, \"driver_claimed\": {}, \
             \"driver_offered\": {}",
            self.configured,
            self.n_classes,
            self.n_segments,
            self.clock_now,
            self.wall_anchor,
            self.wall_released_at,
            self.wall_floor,
            self.wall_lag,
            self.active_txns,
            self.registry_intervals,
            self.registry_settled_lag,
            self.store_versions,
            self.store_granules,
            self.store_max_chain,
            self.gc_watermark,
            self.gc_backlog,
            self.driver_claimed,
            self.driver_offered,
        ));
        s.push_str(&format!(
            ", \"wal_batches\": {}, \"wal_frames\": {}, \"wal_bytes\": {}, \
             \"recovery_replayed\": {}, \"recovery_anomalies\": {}, \"fsync_ns\": {}",
            self.wal_batches,
            self.wal_frames,
            self.wal_bytes,
            self.recovery_replayed,
            self.recovery_anomalies,
            self.fsync_ns.to_json(),
        ));
        s.push_str(", \"classes\": [");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"class\": {}, \"i_old\": {}, \"active\": {}, \"settled_lag\": {}, \
                 \"wall_component\": {}}}",
                c.class, c.i_old, c.active, c.settled_lag, c.wall_component
            ));
        }
        s.push_str("], \"segment_walls\": [");
        for (i, w) in self.segment_walls.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&w.to_string());
        }
        s.push_str("], \"staleness\": [");
        for (i, cell) in self.staleness.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"reader\": \"{}\", \"segment\": {}, \"hist\": {}}}",
                cell.reader_label(),
                cell.segment,
                cell.hist.to_json()
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_board_accepts_globals_and_drops_staleness() {
        let g = GaugeBoard::new();
        g.set_driver_progress(3, 10);
        g.set_clock(42);
        g.record_staleness(0, 0, 7); // silently dropped
        let s = g.snapshot();
        assert!(!s.configured);
        assert_eq!(s.driver_claimed, 3);
        assert_eq!(s.driver_offered, 10);
        assert_eq!(s.clock_now, 42);
        assert!(s.staleness.is_empty());
        assert!(s.classes.is_empty());
    }

    #[test]
    fn configure_is_first_wins_and_idempotent() {
        let g = GaugeBoard::new();
        g.configure(2, 3);
        g.configure(9, 9); // no-op
        let s = g.snapshot();
        assert!(s.configured);
        assert_eq!(s.n_classes, 2);
        assert_eq!(s.n_segments, 3);
        assert_eq!(s.classes.len(), 2);
        assert_eq!(s.segment_walls.len(), 3);
    }

    #[test]
    fn staleness_rows_are_keyed_by_reader_and_segment() {
        let g = GaugeBoard::new();
        g.configure(2, 3);
        g.record_staleness(1, 2, 10);
        g.record_staleness(1, 2, 20);
        g.record_staleness(WALL_READER, 0, 5);
        g.record_staleness(7, 0, 99); // out-of-range class: dropped
        g.record_staleness(0, 9, 99); // out-of-range segment: dropped
        let s = g.snapshot();
        assert_eq!(s.staleness.len(), 2);
        let a = s.staleness_for(1, 2).expect("class cell");
        assert_eq!(a.hist.count, 2);
        assert_eq!(a.hist.min, 10);
        assert_eq!(a.reader_label(), "c1");
        let w = s.staleness_for(WALL_READER, 0).expect("wall cell");
        assert_eq!(w.hist.count, 1);
        assert_eq!(w.reader_label(), "wall");
        assert!(s.staleness_for(0, 0).is_none(), "empty cells are omitted");
    }

    #[test]
    fn class_and_wall_setters_round_trip() {
        let g = GaugeBoard::new();
        g.configure(2, 2);
        g.set_class(0, 4, 2, 1);
        g.set_class(1, 7, 3, 0);
        g.set_class(9, 1, 1, 1); // out of range: dropped
        g.set_wall(100, 110, 95, 15);
        g.set_wall_component(0, 95);
        g.set_wall_component(1, 102);
        g.set_segment_wall(0, 95);
        g.set_segment_wall(1, 102);
        g.set_activity(5, 12, 1);
        g.set_store(40, 32, 4, 8);
        g.set_gc_watermark(90);
        let s = g.snapshot();
        assert_eq!(s.classes[0].i_old, 4);
        assert_eq!(s.classes[1].active, 3);
        assert_eq!(s.wall_floor, 95);
        assert_eq!(s.wall_lag, 15);
        assert_eq!(s.classes[1].wall_component, 102);
        assert_eq!(s.segment_walls, vec![95, 102]);
        assert_eq!(s.active_txns, 5);
        assert_eq!(s.store_max_chain, 4);
        assert_eq!(s.gc_backlog, 8);
        assert_eq!(s.gc_watermark, 90);
        let json = s.to_json();
        assert!(json.contains("\"wall_floor\": 95"));
        assert!(json.contains("\"segment_walls\": [95, 102]"));
    }

    #[test]
    fn snapshot_delta_subtracts_staleness_and_keeps_levels() {
        let g = GaugeBoard::new();
        g.configure(1, 2);
        g.record_staleness(0, 0, 10);
        g.record_staleness(0, 1, 30);
        let before = g.snapshot();
        g.record_staleness(0, 0, 20);
        g.set_wall(50, 55, 48, 7);
        let d = g.snapshot().delta(&before);
        assert_eq!(d.wall_lag, 7, "levels pass through");
        let cell = d.staleness_for(0, 0).expect("delta cell");
        assert_eq!(cell.hist.count, 1, "only the new sample");
        assert!(d.staleness_for(0, 1).is_none(), "unchanged cell dropped");
    }

    #[test]
    fn wal_and_recovery_cells_accumulate_and_reset() {
        let g = GaugeBoard::new();
        g.record_wal_batch(4, 512, 1_000);
        g.record_wal_batch(8, 1024, 3_000);
        g.set_recovery_progress(120, 2);
        let s = g.snapshot();
        assert_eq!(s.wal_batches, 2);
        assert_eq!(s.wal_frames, 12);
        assert_eq!(s.wal_bytes, 1536);
        assert_eq!(s.recovery_replayed, 120);
        assert_eq!(s.recovery_anomalies, 2);
        assert_eq!(s.fsync_ns.count, 2);
        assert!(s.fsync_ns.max >= 3_000);
        let json = s.to_json();
        assert!(json.contains("\"wal_batches\": 2"));
        assert!(json.contains("\"fsync_ns\": {"));
        g.reset();
        let s = g.snapshot();
        assert_eq!(s.wal_batches, 0);
        assert_eq!(s.fsync_ns.count, 0);
    }

    #[test]
    fn reset_clears_cells_but_keeps_configuration() {
        let g = GaugeBoard::new();
        g.configure(1, 1);
        g.record_staleness(0, 0, 10);
        g.set_wall(5, 6, 4, 1);
        g.set_driver_progress(9, 9);
        g.reset();
        let s = g.snapshot();
        assert!(s.configured, "configuration survives reset");
        assert_eq!(s.wall_floor, 0);
        assert_eq!(s.driver_claimed, 0);
        assert!(s.staleness.is_empty());
    }
}
