//! Per-worker latency recording: thread-affine histogram stripes.
//!
//! `Histogram` recording is already lock-free,
//! but its summary cells (`count`, `sum`, extrema) are shared cache
//! lines every recorder would bounce. [`LatencyRecorder`] stripes whole
//! histograms by thread (round-robin assignment on first use, exactly
//! like the striped schedule log), so each worker records into its own
//! cells; [`LatencyRecorder::snapshot`] merges the stripes.

use crate::hist::{Histogram, HistogramSnapshot};
use mc::sync::ThreadStripe;

/// Power-of-two stripe count (worker counts in this workspace are ≤ 16).
const STRIPES: usize = 8;

/// Allocator of stable per-thread stripe indices (shared by every
/// recorder; a thread uses the same stripe slot everywhere; deterministic
/// model thread ids under `--cfg mc`).
static STRIPE_OF_THREAD: ThreadStripe = ThreadStripe::new();

/// A set of thread-affine histogram stripes recording one latency (or
/// length) dimension.
#[derive(Debug)]
pub struct LatencyRecorder {
    stripes: Vec<Histogram>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder {
            stripes: (0..STRIPES).map(|_| Histogram::new()).collect(),
        }
    }
}

impl LatencyRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value into the calling thread's stripe.
    #[inline]
    pub fn record(&self, v: u64) {
        self.stripes[STRIPE_OF_THREAD.index_for_thread(STRIPES - 1)].record(v);
    }

    /// Total values recorded across stripes.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(super::hist::Histogram::count).sum()
    }

    /// Merge every stripe into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for s in &self.stripes {
            out.merge(&s.snapshot());
        }
        out
    }

    /// Reset every stripe.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_merge_to_the_full_distribution() {
        let r = LatencyRecorder::new();
        for v in 0..100u64 {
            r.record(v);
        }
        let s = r.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(r.count(), 100);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 99);
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = LatencyRecorder::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let r = &r;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        r.record(t * 1000 + (i % 7));
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }
}
