//! Wait-cause blame attribution and critical-path profiling over an
//! assembled [`FlightLog`](crate::span::FlightLog).
//!
//! The flight recorder answers *who each transaction waited on*; this
//! module turns that into the two documents a scaling investigation
//! needs:
//!
//! * [`BlameReport`] — total measured block time aggregated **by
//!   cause** (holder class for Protocol B pending-version waits, the
//!   time-wall service for Protocol C waits, unattributed remainder),
//!   plus the waiter-class × holder-class wait matrix and the share of
//!   block time actually slept in driver backoff. Its
//!   [`coverage`](BlameReport::coverage) is the fraction of block time
//!   carrying a cause edge — the ≥95% attribution target.
//! * [`PhaseBreakdown`] — each sampled commit's wall time split into
//!   phases (read/write/commit service, blocked, backoff-slept,
//!   scheduler-other), aggregated over committed flights: the
//!   critical-path phase profile per worker count that `BENCH_e18.json`
//!   records.
//! * [`critical_chain`] — the longest causally-ordered wait chain
//!   ending at one flight: follow the flight's longest wait to its
//!   blocking transaction, then that flight's longest wait, and so on —
//!   the per-commit "critical path" through other transactions.

use crate::span::{FlightLog, Terminal, TxnFlight, WaitCause, NO_CLASS};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One row of the blame table: accumulated wait time for one cause
/// bucket.
#[derive(Debug, Clone)]
pub struct CauseBucket {
    /// Bucket label (e.g. `txn-pending c0`, `wall-pending`).
    pub label: String,
    /// Total wait time attributed to the bucket.
    pub wait_ns: u64,
    /// Wait spans in the bucket.
    pub waits: u64,
}

/// Aggregated wait-cause blame over a flight log.
#[derive(Debug, Clone, Default)]
pub struct BlameReport {
    /// Flights that contributed (sampled flights in the log).
    pub flights: usize,
    /// Total measured block time across all wait spans.
    pub total_wait_ns: u64,
    /// Portion of `total_wait_ns` carrying a cause edge.
    pub attributed_ns: u64,
    /// Portion of `total_wait_ns` attributed to pending time walls.
    pub wall_wait_ns: u64,
    /// Portion of `total_wait_ns` actually slept in driver backoff.
    pub backoff_slept_ns: u64,
    /// Cause buckets, sorted by descending wait time.
    pub by_cause: Vec<CauseBucket>,
    /// Waiter-class × holder-class wait matrix, sorted by descending
    /// wait time. Classes are [`NO_CLASS`] for read-only waiters.
    pub class_matrix: Vec<(u32, u32, u64)>,
}

fn class_label(c: u32) -> String {
    if c == NO_CLASS {
        "ro".to_string()
    } else {
        format!("c{c}")
    }
}

impl BlameReport {
    /// Aggregate every wait span of every flight in the log.
    pub fn build(log: &FlightLog) -> Self {
        let mut buckets: HashMap<String, CauseBucket> = HashMap::new();
        let mut matrix: HashMap<(u32, u32), u64> = HashMap::new();
        let mut report = BlameReport {
            flights: log.flights.len(),
            ..BlameReport::default()
        };
        for f in &log.flights {
            for w in &f.waits {
                report.total_wait_ns += w.dur_ns;
                report.backoff_slept_ns += w.slept_ns;
                let label = match w.cause {
                    WaitCause::TxnPending { class, .. } => {
                        report.attributed_ns += w.dur_ns;
                        *matrix.entry((f.class, class)).or_default() += w.dur_ns;
                        format!("txn-pending {}", class_label(class))
                    }
                    WaitCause::WallPending { .. } => {
                        report.attributed_ns += w.dur_ns;
                        report.wall_wait_ns += w.dur_ns;
                        "wall-pending".to_string()
                    }
                    WaitCause::Unattributed => "unattributed".to_string(),
                };
                let b = buckets.entry(label.clone()).or_insert(CauseBucket {
                    label,
                    wait_ns: 0,
                    waits: 0,
                });
                b.wait_ns += w.dur_ns;
                b.waits += 1;
            }
        }
        report.by_cause = buckets.into_values().collect();
        report
            .by_cause
            .sort_by_key(|b| std::cmp::Reverse(b.wait_ns));
        report.class_matrix = matrix.into_iter().map(|((w, h), ns)| (w, h, ns)).collect();
        report
            .class_matrix
            .sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        report
    }

    /// Fraction of measured block time carrying a cause edge (1.0 when
    /// nothing blocked at all — full attribution of zero wait).
    pub fn coverage(&self) -> f64 {
        if self.total_wait_ns == 0 {
            1.0
        } else {
            self.attributed_ns as f64 / self.total_wait_ns as f64
        }
    }

    /// Plain-text top-`k` blame table plus the class wait matrix.
    pub fn render_top(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "blame: {} flights, {:.3} ms blocked, {:.1}% attributed, {:.3} ms backoff-slept",
            self.flights,
            self.total_wait_ns as f64 / 1e6,
            self.coverage() * 100.0,
            self.backoff_slept_ns as f64 / 1e6,
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>12} {:>8} {:>7}",
            "cause", "wait-ms", "waits", "share"
        );
        for b in self.by_cause.iter().take(k) {
            let share = if self.total_wait_ns == 0 {
                0.0
            } else {
                b.wait_ns as f64 / self.total_wait_ns as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>12.3} {:>8} {:>6.1}%",
                b.label,
                b.wait_ns as f64 / 1e6,
                b.waits,
                share
            );
        }
        if !self.class_matrix.is_empty() {
            let _ = writeln!(out, "  waiter -> holder wait matrix:");
            for &(waiter, holder, ns) in self.class_matrix.iter().take(k) {
                let _ = writeln!(
                    out,
                    "    {:>4} -> {:<4} {:>12.3} ms",
                    class_label(waiter),
                    class_label(holder),
                    ns as f64 / 1e6
                );
            }
        }
        out
    }

    /// Hand-rolled JSON object (no serde in the offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"flights\": {}, \"total_wait_ns\": {}, \"attributed_ns\": {}, \
             \"wall_wait_ns\": {}, \"backoff_slept_ns\": {}, \"coverage\": {:.4}, ",
            self.flights,
            self.total_wait_ns,
            self.attributed_ns,
            self.wall_wait_ns,
            self.backoff_slept_ns,
            self.coverage()
        );
        s.push_str("\"by_cause\": [");
        for (i, b) in self.by_cause.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"cause\": \"{}\", \"wait_ns\": {}, \"waits\": {}}}",
                if i == 0 { "" } else { ", " },
                b.label,
                b.wait_ns,
                b.waits
            );
        }
        s.push_str("], \"class_matrix\": [");
        for (i, &(w, h, ns)) in self.class_matrix.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"waiter\": \"{}\", \"holder\": \"{}\", \"wait_ns\": {}}}",
                if i == 0 { "" } else { ", " },
                class_label(w),
                class_label(h),
                ns
            );
        }
        s.push_str("]}");
        s
    }
}

/// A flight's wall time split into phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Flights aggregated (1 for a single-flight breakdown).
    pub flights: u64,
    /// Read service time.
    pub read_ns: u64,
    /// Write service time.
    pub write_ns: u64,
    /// Commit service time.
    pub commit_ns: u64,
    /// Blocked time (wait spans; includes the backoff-slept portion).
    pub wait_ns: u64,
    /// Portion of `wait_ns` actually slept in driver backoff.
    pub backoff_ns: u64,
    /// Remainder: admission bookkeeping, driver loop, spin retries not
    /// covered by a streak, clock skew.
    pub other_ns: u64,
    /// Total flight wall time.
    pub total_ns: u64,
}

impl PhaseBreakdown {
    /// Break one flight down. Service spans and waits are subtracted
    /// from the admission→end wall time; what remains is `other`.
    pub fn of(f: &TxnFlight) -> Self {
        let mut p = PhaseBreakdown {
            flights: 1,
            total_ns: f.total_ns(),
            ..PhaseBreakdown::default()
        };
        for op in &f.ops {
            match op.kind {
                crate::span::SpanKind::Read => p.read_ns += op.dur_ns,
                crate::span::SpanKind::Write => p.write_ns += op.dur_ns,
                crate::span::SpanKind::Commit => p.commit_ns += op.dur_ns,
            }
        }
        for w in &f.waits {
            p.wait_ns += w.dur_ns;
            p.backoff_ns += w.slept_ns;
        }
        p.other_ns = p
            .total_ns
            .saturating_sub(p.read_ns + p.write_ns + p.commit_ns + p.wait_ns);
        p
    }

    /// Sum breakdowns over every **committed** flight in the log — the
    /// critical-path phase profile of the commits the run produced.
    pub fn of_commits(log: &FlightLog) -> Self {
        let mut agg = PhaseBreakdown::default();
        for f in &log.flights {
            if f.terminal == Some(Terminal::Committed) {
                let p = PhaseBreakdown::of(f);
                agg.flights += 1;
                agg.read_ns += p.read_ns;
                agg.write_ns += p.write_ns;
                agg.commit_ns += p.commit_ns;
                agg.wait_ns += p.wait_ns;
                agg.backoff_ns += p.backoff_ns;
                agg.other_ns += p.other_ns;
                agg.total_ns += p.total_ns;
            }
        }
        agg
    }

    /// Phase shares of total wall time, as `(label, fraction)` rows.
    pub fn shares(&self) -> Vec<(&'static str, f64)> {
        let t = self.total_ns.max(1) as f64;
        vec![
            ("read", self.read_ns as f64 / t),
            ("write", self.write_ns as f64 / t),
            ("commit", self.commit_ns as f64 / t),
            ("wait", self.wait_ns as f64 / t),
            ("other", self.other_ns as f64 / t),
        ]
    }

    /// Hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"flights\": {}, \"read_ns\": {}, \"write_ns\": {}, \"commit_ns\": {}, \
             \"wait_ns\": {}, \"backoff_ns\": {}, \"other_ns\": {}, \"total_ns\": {}}}",
            self.flights,
            self.read_ns,
            self.write_ns,
            self.commit_ns,
            self.wait_ns,
            self.backoff_ns,
            self.other_ns,
            self.total_ns
        )
    }

    /// Plain-text one-line phase profile in milliseconds.
    pub fn render(&self) -> String {
        format!(
            "{} commits: read {:.3} ms, write {:.3} ms, commit {:.3} ms, wait {:.3} ms \
             (backoff {:.3} ms), other {:.3} ms, total {:.3} ms",
            self.flights,
            self.read_ns as f64 / 1e6,
            self.write_ns as f64 / 1e6,
            self.commit_ns as f64 / 1e6,
            self.wait_ns as f64 / 1e6,
            self.backoff_ns as f64 / 1e6,
            self.other_ns as f64 / 1e6,
            self.total_ns as f64 / 1e6
        )
    }
}

/// One hop of a critical chain.
#[derive(Debug, Clone, Copy)]
pub struct ChainHop {
    /// The waiting transaction.
    pub txn: u64,
    /// Its class.
    pub class: u32,
    /// Its longest wait (the hop's cost).
    pub wait_ns: u64,
    /// The cause edge followed out of this hop.
    pub cause: WaitCause,
}

/// The longest causally-ordered wait chain ending at `flight`: follow
/// the flight's longest wait to the transaction it blocked on, then
/// that flight's longest wait, and so on, until a flight that never
/// waited, a cause outside the sampled set, a wall edge, or the depth
/// bound (8 — chains are short in practice; the bound also guards
/// against cause cycles from ring eviction).
pub fn critical_chain(log: &FlightLog, flight: &TxnFlight) -> Vec<ChainHop> {
    let mut chain = Vec::new();
    let mut current = flight;
    for _ in 0..8 {
        let Some(longest) = current.waits.iter().max_by_key(|w| w.dur_ns) else {
            break;
        };
        chain.push(ChainHop {
            txn: current.txn,
            class: current.class,
            wait_ns: longest.dur_ns,
            cause: longest.cause,
        });
        match longest.cause {
            WaitCause::TxnPending { txn, .. } => {
                if chain.iter().any(|h| h.txn == txn) {
                    break; // cycle guard
                }
                match log.flight(txn) {
                    Some(next) => current = next,
                    None => break, // holder was not sampled
                }
            }
            _ => break, // wall or unattributed: chain roots here
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpSpan, SpanKind, WaitSpan};

    fn flight(txn: u64, class: u32, waits: Vec<WaitSpan>) -> TxnFlight {
        TxnFlight {
            txn,
            class,
            worker: 0,
            admit_ns: 0,
            end_ns: 1_000,
            terminal: Some(Terminal::Committed),
            ops: vec![OpSpan {
                kind: SpanKind::Read,
                segment: 0,
                key: 1,
                start_ns: 10,
                dur_ns: 100,
            }],
            waits,
        }
    }

    fn wait(dur: u64, slept: u64, cause: WaitCause) -> WaitSpan {
        WaitSpan {
            start_ns: 0,
            dur_ns: dur,
            slept_ns: slept,
            cause,
        }
    }

    #[test]
    fn blame_aggregates_attribution_and_matrix() {
        let log = FlightLog {
            flights: vec![
                flight(
                    1,
                    0,
                    vec![
                        wait(300, 50, WaitCause::TxnPending { txn: 2, class: 1 }),
                        wait(100, 0, WaitCause::WallPending { anchor: 5 }),
                    ],
                ),
                flight(2, 1, vec![wait(50, 0, WaitCause::Unattributed)]),
            ],
            wall_releases: vec![],
            open: 0,
        };
        let r = BlameReport::build(&log);
        assert_eq!(r.total_wait_ns, 450);
        assert_eq!(r.attributed_ns, 400);
        assert_eq!(r.wall_wait_ns, 100);
        assert_eq!(r.backoff_slept_ns, 50);
        assert!((r.coverage() - 400.0 / 450.0).abs() < 1e-9);
        assert_eq!(r.by_cause[0].label, "txn-pending c1");
        assert_eq!(r.by_cause[0].wait_ns, 300);
        assert_eq!(r.class_matrix, vec![(0, 1, 300)]);
        let table = r.render_top(5);
        assert!(table.contains("txn-pending c1"));
        assert!(table.contains("waiter -> holder"));
        let json = r.to_json();
        assert!(json.contains("\"coverage\": 0.8889"));
        assert!(json.contains("\"holder\": \"c1\""));
    }

    #[test]
    fn empty_log_has_full_coverage() {
        let r = BlameReport::build(&FlightLog::default());
        assert_eq!(r.total_wait_ns, 0);
        assert!((r.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_breakdown_accounts_for_every_nanosecond() {
        let f = flight(1, 0, vec![wait(200, 30, WaitCause::Unattributed)]);
        let p = PhaseBreakdown::of(&f);
        assert_eq!(p.read_ns, 100);
        assert_eq!(p.wait_ns, 200);
        assert_eq!(p.backoff_ns, 30);
        assert_eq!(p.total_ns, 1_000);
        assert_eq!(p.other_ns, 700);
        let total_share: f64 = p
            .shares()
            .iter()
            .filter(|(l, _)| *l != "other")
            .map(|(_, s)| s)
            .sum::<f64>()
            + p.shares().last().unwrap().1;
        assert!((total_share - 1.0).abs() < 1e-9);
        assert!(p.to_json().contains("\"wait_ns\": 200"));
        assert!(p.render().contains("1 commits"));
    }

    #[test]
    fn of_commits_skips_non_committed_flights() {
        let mut aborted = flight(3, 0, vec![]);
        aborted.terminal = Some(Terminal::Aborted);
        let log = FlightLog {
            flights: vec![flight(1, 0, vec![]), aborted],
            wall_releases: vec![],
            open: 0,
        };
        let agg = PhaseBreakdown::of_commits(&log);
        assert_eq!(agg.flights, 1);
    }

    #[test]
    fn critical_chain_follows_cause_edges_and_guards_cycles() {
        let log = FlightLog {
            flights: vec![
                flight(
                    1,
                    0,
                    vec![wait(500, 0, WaitCause::TxnPending { txn: 2, class: 1 })],
                ),
                flight(
                    2,
                    1,
                    vec![wait(300, 0, WaitCause::TxnPending { txn: 1, class: 0 })],
                ),
                flight(
                    3,
                    2,
                    vec![wait(100, 0, WaitCause::WallPending { anchor: 9 })],
                ),
            ],
            wall_releases: vec![],
            open: 0,
        };
        let chain = critical_chain(&log, log.flight(1).unwrap());
        assert_eq!(chain.len(), 2, "cycle 1->2->1 must stop");
        assert_eq!(chain[0].txn, 1);
        assert_eq!(chain[1].txn, 2);
        let wall = critical_chain(&log, log.flight(3).unwrap());
        assert_eq!(wall.len(), 1);
        assert!(matches!(wall[0].cause, WaitCause::WallPending { .. }));
        assert!(critical_chain(&log, &flight(9, 0, vec![])).is_empty());
    }
}
