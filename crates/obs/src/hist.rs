//! Log-bucketed (HDR-style) latency histograms.
//!
//! Values are `u64` (nanoseconds for latencies, plain counts for scan
//! lengths). Buckets are log-linear: each power-of-two octave is split
//! into `SUBS` (16) linear sub-buckets, so any recorded value lands in a
//! bucket whose width is at most 1/16 of its magnitude — every quantile
//! estimate is within ~6.25% of the true value while the whole table
//! stays under 8 KiB. Values below `2 * SUBS` are bucketed exactly.
//!
//! [`Histogram`] records via relaxed atomics (one `fetch_add` on the
//! bucket plus the summary cells), so concurrent recorders never take a
//! lock; [`HistogramSnapshot`] is the plain-integer copy used for
//! merging, quantiles and export.

use mc::sync::{AtomicU64, Ordering};

/// Sub-bucket bits per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two octave (16).
const SUBS: u64 = 1 << SUB_BITS;
/// Total bucket count: exact buckets for 0..2·SUBS, then 16 per octave
/// up to `u64::MAX` (index of the largest value is 975).
pub const N_BUCKETS: usize = (60 * SUBS + SUBS) as usize;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 * SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = msb - SUB_BITS; // >= 1
    let sub = (v >> shift) - SUBS; // 0..SUBS
    ((shift as u64 + 1) * SUBS + sub) as usize
}

/// The smallest value that maps to bucket `i`.
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    if i < (2 * SUBS) as usize {
        return i as u64;
    }
    let row = (i as u64) / SUBS; // >= 2
    let sub = (i as u64) % SUBS;
    (SUBS + sub) << (row - 1)
}

/// The largest value that maps to bucket `i`.
#[inline]
pub fn bucket_high(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// A thread-safe log-bucketed histogram (relaxed atomics throughout;
/// see module docs for the error bound).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    ///
    /// Contract: the full `u64` domain is accepted — [`u64::MAX`] lands
    /// in the last bucket (`N_BUCKETS - 1`) and is reported exactly by
    /// `max`. `sum` is a modular accumulator (wraps at `2^64`), so only
    /// `mean` degrades for pathological totals; counts, quantiles and
    /// extrema stay exact.
    #[inline]
    pub fn record(&self, v: u64) {
        // ordering: Relaxed — independent statistical cells; each RMW is
        // atomic on its own, and readers (snapshot) tolerate skew between
        // cells by contract. No other memory is published here.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: independent stat cell, see fn-top note
        self.sum.fetch_add(v, Ordering::Relaxed); // ordering: independent stat cell, see fn-top note
        self.min.fetch_min(v, Ordering::Relaxed); // ordering: independent stat cell, see fn-top note
        self.max.fetch_max(v, Ordering::Relaxed); // ordering: independent stat cell, see fn-top note
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state (quiescent snapshots are exact; a snapshot
    /// concurrent with recording may miss in-flight values but never
    /// reports a bucket total above what was recorded).
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: Relaxed — per-cell copies; the snapshot contract
        // (module docs) already allows missing in-flight values.
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            // ordering: Relaxed — same per-cell snapshot contract as the
            // bucket copies above.
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Reset every cell to empty.
    pub fn reset(&self) {
        // ordering: Relaxed — reset between phases; racing records land on
        // either side of it, both acceptable for statistics.
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // ordering: phase reset, see fn-top note
        }
        self.count.store(0, Ordering::Relaxed); // ordering: phase reset, see fn-top note
        self.sum.store(0, Ordering::Relaxed); // ordering: phase reset, see fn-top note
        self.min.store(u64::MAX, Ordering::Relaxed); // ordering: phase reset, see fn-top note
        self.max.store(0, Ordering::Relaxed); // ordering: phase reset, see fn-top note
    }
}

/// A point-in-time copy of a [`Histogram`]: plain integers, mergeable,
/// queryable, exportable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (length [`N_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one. Merging is commutative and
    /// associative (bucket-wise addition, min/max of extrema).
    ///
    /// Contract: snapshots with **disjoint** populated buckets merge
    /// losslessly — every bucket count, `count`, `min` and `max` are
    /// exactly what one histogram fed both value streams would hold.
    /// `sum` is modular: it wraps at `2^64` for pathological totals
    /// (e.g. many [`u64::MAX`] values), so `mean` is only meaningful
    /// while the true total fits in a `u64`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Interval view: the values recorded *after* `earlier` was taken,
    /// assuming both are snapshots of the same histogram's life.
    ///
    /// Contract (what `hdd-top` relies on to never print wrapped
    /// `u64`s): every subtraction **saturates**. If the histogram was
    /// reset between the two snapshots — a crash/recovery resume, or an
    /// explicit `Obs::reset` — some buckets in `self` are *smaller*
    /// than in `earlier`; those clamp to zero instead of wrapping, so
    /// the delta degrades to "what this incarnation recorded" rather
    /// than garbage. `count` is re-derived from the delta buckets (the
    /// stored counts may disagree across a reset), and `min`/`max` are
    /// re-derived at bucket resolution from the surviving delta buckets
    /// (the exact interval extrema are not recoverable from two
    /// endpoint snapshots); an empty delta reports the canonical empty
    /// extrema (`min == u64::MAX`, `max == 0`).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let count: u64 = buckets.iter().sum();
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        HistogramSnapshot {
            count,
            sum: if count == 0 {
                0
            } else {
                self.sum.saturating_sub(earlier.sum)
            },
            min: first.map_or(u64::MAX, bucket_low),
            max: last.map_or(0, |i| bucket_high(i).min(self.max)),
            buckets,
        }
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` value, clamped to the
    /// observed maximum — an estimate at or above the true quantile and
    /// within one bucket width (≤ ~6.25%) of it. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Hand-rolled JSON object (the offline build has no serde):
    /// summary fields plus the non-empty buckets as `[index, low, count]`
    /// triples, so external tooling can rebuild the distribution.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
            self.count,
            self.sum,
            if self.count == 0 { 0 } else { self.min },
            self.max,
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
        ));
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&format!("[{}, {}, {}]", i, bucket_low(i), c));
            }
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every bucket's low is its predecessor's high + 1, and every
        // value maps into a bucket whose [low, high] contains it.
        for i in 1..N_BUCKETS {
            assert_eq!(bucket_low(i), bucket_high(i - 1).wrapping_add(1), "at {i}");
        }
        for v in [0u64, 1, 15, 16, 31, 32, 33, 63, 64, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "v={v} i={i}");
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        // Seeded multiplicative walk over the whole u64 range.
        let mut prev_v = 0u64;
        let mut prev_i = bucket_index(0);
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            assert!(i >= prev_i, "index dropped between {prev_v} and {v}");
            assert!(i < N_BUCKETS);
            prev_v = v;
            prev_i = i;
            v = v * 3 + 1;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / low <= 1/16 for all non-exact buckets.
        for i in (2 * SUBS as usize)..N_BUCKETS - 1 {
            let low = bucket_low(i);
            let width = bucket_high(i) - low + 1;
            assert!(
                (width as f64) / (low as f64) <= 1.0 / 16.0 + 1e-12,
                "bucket {i}: low={low} width={width}"
            );
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        // Quantile estimates sit at or above the true value, within a
        // bucket width.
        for (q, truth) in [(0.5, 500u64), (0.95, 950), (0.99, 990), (1.0, 1000)] {
            let est = s.quantile(q);
            assert!(est >= truth, "q={q}: est {est} < truth {truth}");
            assert!(
                est as f64 <= truth as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "q={q}: est {est} too far above {truth}"
            );
        }
        assert_eq!(s.quantile(0.0), 1); // rank clamps to 1 -> min bucket
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        let json = s.to_json();
        assert!(json.contains("\"count\": 0"));
        assert!(json.contains("\"buckets\": []"));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // Seeded-loop property test (no proptest offline): three random
        // histograms, merged in every association/order, agree exactly.
        let mut seed = 0x0B5E_D00Du64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 17
        };
        for _ in 0..20 {
            let parts: Vec<HistogramSnapshot> = (0..3)
                .map(|_| {
                    let h = Histogram::new();
                    for _ in 0..50 {
                        h.record(next() % (1 << 34));
                    }
                    h.snapshot()
                })
                .collect();
            let merge2 = |x: &HistogramSnapshot, y: &HistogramSnapshot| {
                let mut m = x.clone();
                m.merge(y);
                m
            };
            let ab_c = merge2(&merge2(&parts[0], &parts[1]), &parts[2]);
            let a_bc = merge2(&parts[0], &merge2(&parts[1], &parts[2]));
            let c_ba = merge2(&parts[2], &merge2(&parts[1], &parts[0]));
            assert_eq!(ab_c, a_bc);
            assert_eq!(ab_c, c_ba);
            assert_eq!(ab_c.count, 150);
        }
    }

    #[test]
    fn quantile_on_empty_histogram_is_zero_for_all_q() {
        let s = Histogram::new().snapshot();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p95(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.min, u64::MAX, "canonical empty min");
        assert_eq!(s.max, 0, "canonical empty max");
    }

    #[test]
    fn merge_of_disjoint_buckets_is_lossless() {
        // Low values and high values land in provably different
        // buckets; merging the two snapshots must equal one histogram
        // that saw both streams, bucket for bucket.
        let low = Histogram::new();
        for v in [1u64, 2, 3, 7] {
            low.record(v);
        }
        let high = Histogram::new();
        for v in [1 << 20, (1 << 20) + 5, 1 << 30] {
            high.record(v);
        }
        let both = Histogram::new();
        for v in [1u64, 2, 3, 7, 1 << 20, (1 << 20) + 5, 1 << 30] {
            both.record(v);
        }
        let (ls, hs) = (low.snapshot(), high.snapshot());
        for (i, &c) in ls.buckets.iter().enumerate() {
            assert!(c == 0 || hs.buckets[i] == 0, "buckets overlap at {i}");
        }
        let mut merged = ls.clone();
        merged.merge(&hs);
        assert_eq!(merged, both.snapshot());
        assert_eq!(merged.count, 7);
        assert_eq!(merged.min, 1);
        assert_eq!(merged.max, 1 << 30);
    }

    #[test]
    fn max_value_recording_lands_in_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[N_BUCKETS - 1], 2);
        assert_eq!(s.quantile(1.0), u64::MAX);
        // `sum` is modular by contract: MAX + (MAX-1) + 0 wraps.
        assert_eq!(s.sum, u64::MAX.wrapping_add(u64::MAX - 1));
    }

    #[test]
    fn delta_is_the_interval_view() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let before = h.snapshot();
        for v in [100u64, 200] {
            h.record(v);
        }
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 300);
        // Bucket-resolution extrema bracket the true interval extrema.
        assert!(d.min <= 100 && 100 <= bucket_high(bucket_index(d.min)));
        assert_eq!(d.max, 200, "clamped to the lifetime max");
        assert!(d.quantile(0.5) >= 100);
    }

    #[test]
    fn delta_saturates_across_reset_instead_of_wrapping() {
        // A recovery/resume resets the histogram mid-interval; the
        // delta against the pre-reset snapshot must clamp, not wrap.
        let h = Histogram::new();
        for v in [5u64, 6, 7, 8, 9, 1000] {
            h.record(v);
        }
        let before = h.snapshot();
        h.reset();
        h.record(42);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 1, "only the post-reset value survives");
        assert!(d.sum <= 42, "sum clamps to the new incarnation");
        assert!(d.min <= 42 && d.max >= 42 && d.max < 1000);
        for &c in &d.buckets {
            assert!(c <= 1, "no wrapped bucket counts");
        }
        // Fully-empty delta (snapshot taken right after reset).
        h.reset();
        let empty = h.snapshot().delta(&before);
        assert!(empty.is_empty());
        assert_eq!(empty.min, u64::MAX);
        assert_eq!(empty.max, 0);
        assert_eq!(empty.sum, 0);
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn quantile_bounds_hold_on_seeded_random_data() {
        // Property: for random data, quantile(q) brackets the exact
        // order statistic from above within one bucket.
        let mut seed = 0xFEED_5EEDu64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 13
        };
        for round in 0..10 {
            let h = Histogram::new();
            let mut vals: Vec<u64> = (0..500).map(|_| next() % (1 << (10 + round))).collect();
            for &v in &vals {
                h.record(v);
            }
            vals.sort_unstable();
            let s = h.snapshot();
            for q in [0.1, 0.5, 0.9, 0.99] {
                let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
                let truth = vals[rank - 1];
                let est = s.quantile(q);
                assert!(est >= truth, "round {round} q={q}: {est} < {truth}");
                let hi = bucket_high(bucket_index(truth));
                assert!(est <= hi.min(s.max), "round {round} q={q}: {est} > {hi}");
            }
        }
    }
}
