//! The transaction flight recorder: causal span tracing.
//!
//! While [`trace`](crate::trace) answers *why a protocol decided what it
//! did* (one ring of independent decision events), this module answers
//! *where a transaction's wall-clock time went and who it waited on*:
//! every sampled transaction leaves a **span tree** — admission, per-op
//! service spans, block/wait spans, terminal commit/abort — and every
//! wait span carries a **cause edge**: the transaction id (and class),
//! or the pending time wall, whose completion unblocked it, recorded at
//! the exact block point inside hdd Protocols A/B/C.
//!
//! Recording is double-gated behind the existing [`Obs`](crate::Obs)
//! enable flag *and* a sampling stride: with `sample_every = N`, every
//! Nth transaction (by id) is fully traced and the rest are
//! counter-only ([`FlightRecorder::admitted`] still counts them). The
//! stride is also consulted by the per-op decision tracing in the
//! scheduler via [`FlightRecorder::trace_txn`], so "sampled mode" keeps
//! the hot path at counter cost for the other N−1 transactions. With
//! `sample_every = 0` the recorder is inert and enabled-mode behavior
//! is exactly as before this module existed.
//!
//! Storage reuses the [`TraceRing`](crate::trace::TraceRing) shape:
//! thread-affine stripes stamped with a global ticket, bounded per
//! stripe (oldest evicted, counted in [`FlightRecorder::dropped`]),
//! merged ticket-ordered on [`FlightRecorder::drain`]. Timestamps are
//! nanoseconds since the recorder's epoch (one `Instant` captured at
//! construction), so events from driver threads, scheduler block points
//! and the maintenance thread share one clock.
//!
//! [`assemble`] folds a drained event stream back into per-transaction
//! [`TxnFlight`] trees, resolving each wait span's cause to the latest
//! [`SpanEvent::BlockCause`] recorded before the wait ended, ready for
//! [`blame`](crate::blame) analysis or the Perfetto exporter.

use mc::sync::{AtomicU64, Mutex, Ordering, ThreadStripe};
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// Class index used for transactions without a class (read-only
/// transactions) or when a blocker's class can no longer be resolved.
pub const NO_CLASS: u32 = u32::MAX;

/// Which scheduler call an [`SpanEvent::Op`] span timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A `read` call.
    Read,
    /// A `write` call.
    Write,
    /// A `commit` call.
    Commit,
}

impl SpanKind {
    /// Short stable label (tables, JSON, Perfetto span names).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Read => "read",
            SpanKind::Write => "write",
            SpanKind::Commit => "commit",
        }
    }
}

/// The cause edge of a wait span: what the blocked transaction was
/// waiting for, recorded at the block point by the protocol that
/// returned `Block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitCause {
    /// Blocked on another transaction's pending version (Protocol B
    /// read/write rules, or the defensive wall-violation block): the
    /// wait ends when `txn` commits or aborts. `class` is the holder's
    /// class at block time ([`NO_CLASS`] when it could not be resolved).
    TxnPending {
        /// The holder transaction id.
        txn: u64,
        /// The holder's class index.
        class: u32,
    },
    /// Blocked on the time-wall service (Protocol C before any wall has
    /// been released): the wait ends at the next wall release. `anchor`
    /// is the pending wall's anchor time, 0 when none was pending.
    WallPending {
        /// Anchor time `m` of the pending wall.
        anchor: u64,
    },
    /// No cause was recorded for the wait (non-hdd scheduler, or the
    /// cause event was evicted from the ring).
    Unattributed,
}

impl WaitCause {
    /// Coarse cause-category label (blame tables, JSON).
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::TxnPending { .. } => "txn-pending",
            WaitCause::WallPending { .. } => "wall-pending",
            WaitCause::Unattributed => "unattributed",
        }
    }
}

impl fmt::Display for WaitCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitCause::TxnPending { txn, class } if *class == NO_CLASS => {
                write!(f, "txn-pending(t{txn})")
            }
            WaitCause::TxnPending { txn, class } => write!(f, "txn-pending(t{txn} c{class})"),
            WaitCause::WallPending { anchor } => write!(f, "wall-pending(m={anchor})"),
            WaitCause::Unattributed => f.write_str("unattributed"),
        }
    }
}

/// How a flight ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminal {
    /// Committed.
    Committed,
    /// Aborted by a protocol rule (the driver restarts the program as a
    /// fresh transaction — a fresh flight).
    Aborted,
    /// The program exhausted its restart budget.
    GaveUp,
    /// The program hit its driver deadline.
    DeadlineExceeded,
    /// A chaos fault abandoned the transaction without an abort.
    Abandoned,
    /// The straggler watchdog reaped the transaction. For a crashed
    /// flight this arrives *after* [`Terminal::Abandoned`] and wins
    /// (last terminal takes precedence in [`assemble`]).
    Reaped,
}

impl Terminal {
    /// Short stable label (tables, JSON, Perfetto span names).
    pub fn label(self) -> &'static str {
        match self {
            Terminal::Committed => "committed",
            Terminal::Aborted => "aborted",
            Terminal::GaveUp => "gave-up",
            Terminal::DeadlineExceeded => "deadline-exceeded",
            Terminal::Abandoned => "abandoned",
            Terminal::Reaped => "reaped",
        }
    }
}

/// One flight-recorder event. Payloads are raw integers (this crate
/// sits below `txn-model`); timestamps are nanoseconds since the
/// owning recorder's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// A sampled transaction entered the system (`begin` returned).
    Admit {
        /// Transaction id.
        txn: u64,
        /// Class index ([`NO_CLASS`] for read-only transactions).
        class: u32,
        /// Driver worker index that runs the transaction.
        worker: u32,
        /// Admission time.
        at_ns: u64,
    },
    /// One scheduler call completed (service span).
    Op {
        /// Transaction id.
        txn: u64,
        /// Which call.
        kind: SpanKind,
        /// Segment of the granule touched (0 for commit).
        segment: u32,
        /// Granule key (0 for commit).
        key: u64,
        /// Call start.
        start_ns: u64,
        /// Call duration.
        dur_ns: u64,
    },
    /// A contiguous block streak ended (the blocked step was finally
    /// granted or abandoned); recorded by the driver.
    Wait {
        /// Transaction id.
        txn: u64,
        /// Streak start.
        start_ns: u64,
        /// Streak duration.
        dur_ns: u64,
        /// Portion actually slept in driver backoff.
        slept_ns: u64,
    },
    /// A protocol block point recorded why the operation blocked;
    /// [`assemble`] attaches the latest cause before a wait's end to
    /// that wait span.
    BlockCause {
        /// The blocked transaction.
        txn: u64,
        /// When the block verdict was produced.
        at_ns: u64,
        /// The cause edge.
        cause: WaitCause,
    },
    /// The maintenance thread released a time wall (the wake event for
    /// [`WaitCause::WallPending`] edges).
    WallRelease {
        /// Anchor time `m` of the released wall.
        anchor: u64,
        /// Release time.
        at_ns: u64,
    },
    /// The flight ended.
    End {
        /// Transaction id.
        txn: u64,
        /// End time.
        at_ns: u64,
        /// How it ended.
        terminal: Terminal,
    },
}

impl SpanEvent {
    /// The transaction the event belongs to, if any.
    pub fn txn(&self) -> Option<u64> {
        match self {
            SpanEvent::Admit { txn, .. }
            | SpanEvent::Op { txn, .. }
            | SpanEvent::Wait { txn, .. }
            | SpanEvent::BlockCause { txn, .. }
            | SpanEvent::End { txn, .. } => Some(*txn),
            SpanEvent::WallRelease { .. } => None,
        }
    }
}

/// Power-of-two stripe count (mirrors the trace ring).
const STRIPES: usize = 8;

/// Default events retained per stripe. A fully traced transaction costs
/// roughly `2 + ops + waits` events, so the default window holds the
/// freshest few thousand sampled flights.
pub const DEFAULT_STRIPE_CAPACITY: usize = 8192;

/// Allocator of stable per-thread stripe indices (a distinct instance
/// from the trace ring's so the two rings spread threads independently;
/// deterministic model thread ids under `--cfg mc`).
static STRIPE_OF_THREAD: ThreadStripe = ThreadStripe::new();

/// The flight recorder: a bounded, ticket-stamped, thread-affine ring
/// of [`SpanEvent`]s plus the sampling stride and counter-only totals
/// (see module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<(u64, SpanEvent)>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    /// Shared epoch for `now_ns` across every recording thread.
    epoch: Instant,
    /// Sampling stride: 0 = recorder off, N = trace every Nth txn id.
    sample_every: AtomicU64,
    /// Transactions offered to `admit` while active (sampled or not).
    admitted: AtomicU64,
    /// Transactions fully traced (the sampled subset).
    sampled: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_STRIPE_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `per_stripe` events per stripe,
    /// with sampling off.
    pub fn with_capacity(per_stripe: usize) -> Self {
        FlightRecorder {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: per_stripe.max(1),
            epoch: Instant::now(),
            sample_every: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since the recorder's epoch — the shared span clock.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Set the sampling stride: 0 switches the recorder off, `n` traces
    /// every `n`th transaction id fully and the rest counter-only.
    pub fn set_sample_every(&self, n: u64) {
        // ordering: Relaxed — advisory configuration; a racing admit sees
        // the old or new stride, both valid sampling decisions.
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// The current sampling stride (0 = off).
    #[inline]
    pub fn sample_every(&self) -> u64 {
        // ordering: Relaxed — advisory configuration read, see setter.
        self.sample_every.load(Ordering::Relaxed)
    }

    /// True when the recorder is active (a stride is set). Callers must
    /// still honor the owning [`Obs`](crate::Obs) enable flag.
    #[inline]
    pub fn active(&self) -> bool {
        self.sample_every() != 0
    }

    /// True when transaction `txn` falls on the sampling stride (false
    /// whenever the recorder is inactive): one relaxed load.
    #[inline]
    pub fn sampled(&self, txn: u64) -> bool {
        match self.sample_every() {
            0 => false,
            n => txn.is_multiple_of(n),
        }
    }

    /// Should per-op decision tracing fire for `txn`? `true` for every
    /// transaction while the recorder is inactive (pre-existing
    /// enabled-mode behavior), and only for sampled transactions in
    /// sampled mode — the stride that keeps the other N−1 transactions
    /// counter-only.
    #[inline]
    pub fn trace_txn(&self, txn: u64) -> bool {
        match self.sample_every() {
            0 => true,
            n => txn.is_multiple_of(n),
        }
    }

    /// Admit a transaction: counts it, and when it falls on the stride
    /// pushes the [`SpanEvent::Admit`] record and returns `true` (the
    /// caller should then record the rest of the flight). No-op
    /// returning `false` while inactive.
    pub fn admit(&self, txn: u64, class: u32, worker: u32) -> bool {
        if !self.active() {
            return false;
        }
        // ordering: Relaxed — statistical counters; totals are read at
        // quiescence (drain/snapshot), no memory is published here.
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if !self.sampled(txn) {
            return false;
        }
        self.sampled.fetch_add(1, Ordering::Relaxed); // ordering: statistical counter, see note above
        self.push(SpanEvent::Admit {
            txn,
            class,
            worker,
            at_ns: self.now_ns(),
        });
        true
    }

    /// Append an event: draw a global ticket, push into the calling
    /// thread's stripe, evicting that stripe's oldest event when full.
    pub fn push(&self, ev: SpanEvent) {
        // ordering: Relaxed — ticket uniqueness from fetch_add atomicity;
        // the event payload is published by the stripe mutex below.
        let ticket = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripes[STRIPE_OF_THREAD.index_for_thread(STRIPES - 1)].lock();
        if stripe.len() >= self.capacity {
            stripe.pop_front();
            // ordering: Relaxed — statistical eviction counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        stripe.push_back((ticket, ev));
    }

    /// Events recorded over the recorder's lifetime (evicted included).
    pub fn recorded(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Transactions offered to [`FlightRecorder::admit`] while active.
    pub fn admitted(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.admitted.load(Ordering::Relaxed)
    }

    /// Transactions fully traced (the sampled subset of `admitted`).
    pub fn sampled_count(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.sampled.load(Ordering::Relaxed)
    }

    /// Take every retained event, merged into one ticket-ordered
    /// stream. Intended for quiescent moments, like the trace ring.
    pub fn drain(&self) -> Vec<(u64, SpanEvent)> {
        let mut all: Vec<(u64, SpanEvent)> = Vec::new();
        for s in &self.stripes {
            all.extend(s.lock().drain(..));
        }
        all.sort_unstable_by_key(|&(t, _)| t);
        all
    }

    /// Drop every retained event and zero the counters. The sampling
    /// stride is left as-is (it is configuration, like the enable
    /// flag).
    pub fn reset(&self) {
        for s in &self.stripes {
            s.lock().clear();
        }
        // ordering: Relaxed — counter reset between phases; racing
        // recorders land on either side, both acceptable.
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed); // ordering: phase reset, see note above
        self.admitted.store(0, Ordering::Relaxed); // ordering: phase reset, see note above
        self.sampled.store(0, Ordering::Relaxed); // ordering: phase reset, see note above
    }
}

/// One op service span of an assembled flight.
#[derive(Debug, Clone, Copy)]
pub struct OpSpan {
    /// Which scheduler call.
    pub kind: SpanKind,
    /// Segment touched (0 for commit).
    pub segment: u32,
    /// Granule key (0 for commit).
    pub key: u64,
    /// Call start (ns since epoch).
    pub start_ns: u64,
    /// Call duration.
    pub dur_ns: u64,
}

/// One wait span of an assembled flight, with its resolved cause edge.
#[derive(Debug, Clone, Copy)]
pub struct WaitSpan {
    /// Streak start (ns since epoch).
    pub start_ns: u64,
    /// Streak duration.
    pub dur_ns: u64,
    /// Portion slept in driver backoff.
    pub slept_ns: u64,
    /// The cause edge ([`WaitCause::Unattributed`] when none was
    /// recorded before the wait ended).
    pub cause: WaitCause,
}

/// One assembled per-transaction span tree.
#[derive(Debug, Clone)]
pub struct TxnFlight {
    /// Transaction id.
    pub txn: u64,
    /// Class index ([`NO_CLASS`] for read-only transactions).
    pub class: u32,
    /// Driver worker index.
    pub worker: u32,
    /// Admission time (ns since epoch).
    pub admit_ns: u64,
    /// End time; equals `admit_ns` for still-open flights.
    pub end_ns: u64,
    /// How the flight ended (`None` = open: an admit without a
    /// terminal — a span leak unless events were evicted).
    pub terminal: Option<Terminal>,
    /// Op service spans in ticket order.
    pub ops: Vec<OpSpan>,
    /// Wait spans in ticket order, causes resolved.
    pub waits: Vec<WaitSpan>,
}

impl TxnFlight {
    /// Total flight wall time (admission to terminal).
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.admit_ns)
    }

    /// Total blocked time across wait spans.
    pub fn wait_ns(&self) -> u64 {
        self.waits.iter().map(|w| w.dur_ns).sum()
    }
}

/// A drained, assembled flight log.
#[derive(Debug, Clone, Default)]
pub struct FlightLog {
    /// Flights keyed by admission order.
    pub flights: Vec<TxnFlight>,
    /// Wall releases observed, as `(anchor, at_ns)`.
    pub wall_releases: Vec<(u64, u64)>,
    /// Flights admitted but never terminated (span leaks, unless the
    /// ring evicted events).
    pub open: usize,
}

impl FlightLog {
    /// Find a flight by transaction id.
    pub fn flight(&self, txn: u64) -> Option<&TxnFlight> {
        self.flights.iter().find(|f| f.txn == txn)
    }
}

/// Fold a drained event stream into per-transaction flights.
///
/// * Events without a preceding `Admit` (evicted, or pushed by the
///   watchdog for an unsampled transaction) are dropped.
/// * Each wait span's cause is the **latest** `BlockCause` for the same
///   transaction recorded at or before the wait's end; earlier causes
///   belong to earlier streaks and are superseded.
/// * The **last** terminal wins: a crashed flight records `Abandoned`
///   at the fault point and `Reaped` when the watchdog retires it; the
///   assembled flight reports `Reaped` (and keeps the earlier end time
///   of the first terminal as its end).
pub fn assemble(events: &[(u64, SpanEvent)]) -> FlightLog {
    let mut log = FlightLog::default();
    // txn -> index into log.flights; rebuilt streams are small enough
    // that a linear probe on cause resolution would also do, but admits
    // arrive in ticket order so a map keeps this O(n log n) overall.
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    // Pending causes per txn: (at_ns, cause), in ticket order.
    let mut causes: std::collections::HashMap<u64, Vec<(u64, WaitCause)>> =
        std::collections::HashMap::new();
    for (_, ev) in events {
        match *ev {
            SpanEvent::Admit {
                txn,
                class,
                worker,
                at_ns,
            } => {
                index.insert(txn, log.flights.len());
                log.flights.push(TxnFlight {
                    txn,
                    class,
                    worker,
                    admit_ns: at_ns,
                    end_ns: at_ns,
                    terminal: None,
                    ops: Vec::new(),
                    waits: Vec::new(),
                });
            }
            SpanEvent::Op {
                txn,
                kind,
                segment,
                key,
                start_ns,
                dur_ns,
            } => {
                if let Some(&i) = index.get(&txn) {
                    log.flights[i].ops.push(OpSpan {
                        kind,
                        segment,
                        key,
                        start_ns,
                        dur_ns,
                    });
                }
            }
            SpanEvent::Wait {
                txn,
                start_ns,
                dur_ns,
                slept_ns,
            } => {
                if let Some(&i) = index.get(&txn) {
                    let end = start_ns + dur_ns;
                    let cause = causes
                        .get(&txn)
                        .and_then(|cs| cs.iter().rev().find(|(at, _)| *at <= end).map(|&(_, c)| c))
                        .unwrap_or(WaitCause::Unattributed);
                    log.flights[i].waits.push(WaitSpan {
                        start_ns,
                        dur_ns,
                        slept_ns,
                        cause,
                    });
                }
            }
            SpanEvent::BlockCause { txn, at_ns, cause } => {
                causes.entry(txn).or_default().push((at_ns, cause));
            }
            SpanEvent::WallRelease { anchor, at_ns } => {
                log.wall_releases.push((anchor, at_ns));
            }
            SpanEvent::End {
                txn,
                at_ns,
                terminal,
            } => {
                if let Some(&i) = index.get(&txn) {
                    let f = &mut log.flights[i];
                    if f.terminal.is_none() {
                        f.end_ns = at_ns;
                    }
                    f.terminal = Some(terminal); // last terminal wins
                }
            }
        }
    }
    log.open = log.flights.iter().filter(|f| f.terminal.is_none()).count();
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_recorder_admits_nothing() {
        let fr = FlightRecorder::default();
        assert!(!fr.active());
        assert!(!fr.admit(0, 0, 0));
        assert_eq!(fr.admitted(), 0);
        assert_eq!(fr.recorded(), 0);
        assert!(fr.trace_txn(7), "inactive stride traces every txn");
    }

    #[test]
    fn stride_samples_every_nth_txn_and_counts_the_rest() {
        let fr = FlightRecorder::default();
        fr.set_sample_every(4);
        let mut traced = 0;
        for txn in 0..16 {
            if fr.admit(txn, 1, 0) {
                traced += 1;
                assert!(fr.trace_txn(txn));
            } else {
                assert!(!fr.trace_txn(txn), "unsampled txns are counter-only");
            }
        }
        assert_eq!(traced, 4);
        assert_eq!(fr.admitted(), 16);
        assert_eq!(fr.sampled_count(), 4);
        assert_eq!(fr.recorded(), 4, "one Admit event per sampled txn");
    }

    #[test]
    fn assemble_builds_trees_and_resolves_causes() {
        let fr = FlightRecorder::default();
        fr.set_sample_every(1);
        assert!(fr.admit(7, 2, 0));
        fr.push(SpanEvent::Op {
            txn: 7,
            kind: SpanKind::Read,
            segment: 1,
            key: 9,
            start_ns: 100,
            dur_ns: 50,
        });
        // Two block streaks: the first caused by t3, the second by the
        // pending wall. Causes recorded at block points, waits by the
        // driver when each streak ends.
        fr.push(SpanEvent::BlockCause {
            txn: 7,
            at_ns: 160,
            cause: WaitCause::TxnPending { txn: 3, class: 0 },
        });
        fr.push(SpanEvent::Wait {
            txn: 7,
            start_ns: 155,
            dur_ns: 40,
            slept_ns: 10,
        });
        fr.push(SpanEvent::BlockCause {
            txn: 7,
            at_ns: 210,
            cause: WaitCause::WallPending { anchor: 42 },
        });
        fr.push(SpanEvent::Wait {
            txn: 7,
            start_ns: 205,
            dur_ns: 30,
            slept_ns: 0,
        });
        fr.push(SpanEvent::WallRelease {
            anchor: 42,
            at_ns: 230,
        });
        fr.push(SpanEvent::End {
            txn: 7,
            at_ns: 300,
            terminal: Terminal::Committed,
        });
        let log = assemble(&fr.drain());
        assert_eq!(log.flights.len(), 1);
        assert_eq!(log.open, 0);
        assert_eq!(log.wall_releases, vec![(42, 230)]);
        let f = log.flight(7).unwrap();
        assert_eq!(f.class, 2);
        assert_eq!(f.terminal, Some(Terminal::Committed));
        assert_eq!(f.ops.len(), 1);
        assert_eq!(f.waits.len(), 2);
        assert_eq!(f.waits[0].cause, WaitCause::TxnPending { txn: 3, class: 0 });
        assert_eq!(f.waits[1].cause, WaitCause::WallPending { anchor: 42 });
        assert_eq!(f.wait_ns(), 70);
        assert_eq!(f.end_ns, 300);
    }

    #[test]
    fn last_terminal_wins_and_open_flights_are_counted() {
        let fr = FlightRecorder::default();
        fr.set_sample_every(1);
        assert!(fr.admit(1, 0, 0));
        fr.push(SpanEvent::End {
            txn: 1,
            at_ns: 50,
            terminal: Terminal::Abandoned,
        });
        fr.push(SpanEvent::End {
            txn: 1,
            at_ns: 90,
            terminal: Terminal::Reaped,
        });
        assert!(fr.admit(2, 0, 1)); // never terminated: a leak
        let log = assemble(&fr.drain());
        let f1 = log.flight(1).unwrap();
        assert_eq!(f1.terminal, Some(Terminal::Reaped), "reap supersedes");
        assert_eq!(f1.end_ns, 50, "first terminal fixes the end time");
        assert_eq!(log.open, 1);
        assert!(log.flight(2).unwrap().terminal.is_none());
    }

    #[test]
    fn unadmitted_events_are_dropped_and_reset_clears() {
        let fr = FlightRecorder::default();
        fr.set_sample_every(2);
        // Watchdog pushes an End for an unsampled txn: assemble ignores it.
        fr.push(SpanEvent::End {
            txn: 5,
            at_ns: 10,
            terminal: Terminal::Reaped,
        });
        let log = assemble(&fr.drain());
        assert!(log.flights.is_empty());
        fr.admit(2, 0, 0);
        fr.reset();
        assert_eq!(fr.recorded(), 0);
        assert_eq!(fr.admitted(), 0);
        assert_eq!(fr.sample_every(), 2, "stride is configuration");
    }

    #[test]
    fn concurrent_pushes_merge_ticket_ordered() {
        let fr = FlightRecorder::with_capacity(10_000);
        fr.set_sample_every(1);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let fr = &fr;
                scope.spawn(move || {
                    for i in 0..500 {
                        fr.push(SpanEvent::BlockCause {
                            txn: t,
                            at_ns: i,
                            cause: WaitCause::Unattributed,
                        });
                    }
                });
            }
        });
        let drained = fr.drain();
        assert_eq!(drained.len(), 2000);
        for w in drained.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn labels_and_display_are_stable() {
        assert_eq!(SpanKind::Read.label(), "read");
        assert_eq!(Terminal::DeadlineExceeded.label(), "deadline-exceeded");
        assert_eq!(
            format!("{}", WaitCause::TxnPending { txn: 9, class: 1 }),
            "txn-pending(t9 c1)"
        );
        assert_eq!(
            format!(
                "{}",
                WaitCause::TxnPending {
                    txn: 9,
                    class: NO_CLASS
                }
            ),
            "txn-pending(t9)"
        );
        assert_eq!(
            format!("{}", WaitCause::WallPending { anchor: 3 }),
            "wall-pending(m=3)"
        );
        assert_eq!(
            SpanEvent::WallRelease {
                anchor: 1,
                at_ns: 2
            }
            .txn(),
            None
        );
    }
}
