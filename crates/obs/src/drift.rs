//! Streaming workload-drift sketch: live access frequencies vs EWMA
//! baselines, plus wall-drag blame.
//!
//! The [`GaugeBoard`](crate::gauges::GaugeBoard) answers "what is the
//! scheduler doing right now?"; the [`DriftBoard`] answers "is the
//! traffic still the traffic the hierarchy was *built* for?" — the
//! sensing half of online repartitioning (DESIGN.md §14). It keeps
//! three sketches, all O(1) relaxed-atomic bumps on paths the gauges
//! already instrument:
//!
//! * **access cells** — per `(reader class, source segment)` counts of
//!   Protocol A / Protocol C cross-reads, the same coordinates as the
//!   staleness histograms (wall readers get the synthetic
//!   [`crate::gauges::WALL_READER`] row);
//! * **co-access edges** — per `(writer segment, accessed segment)`
//!   counts folded from each admitted transaction's declared profile at
//!   `begin`; this is exactly the arc-generation rule of the data
//!   hierarchy graph (DESIGN.md §2), so accumulating the matrix *is*
//!   observing a DHG;
//! * **arrival/commit counters** — per class (plus an ad-hoc read-only
//!   row), so rate shifts between classes are visible even when the
//!   per-segment mix is stable.
//!
//! A periodic **fold** (maintenance cadence, [`DriftBoard::fold`])
//! turns the interval since the previous fold into share vectors,
//! scores them against EWMA baselines by total-variation distance
//! (`½·Σ|p_i − b_i|`, in milli-units so `0..=1000`), then absorbs the
//! interval into the baselines. The first adequately-sampled fold
//! seeds the baseline and scores zero — the board alarms on *change*,
//! not on any particular shape. Crossing the threshold trips the board
//! (edge-triggered, with 20% hysteresis on release) so a trip is a
//! discrete observable event, not a level.
//!
//! The **wall-drag attributor** is fed from the gauge refresh, where
//! the released wall components already exist: each refresh names the
//! class whose component equals the wall floor (the "dragger"), bumps
//! its blame counter, and on dragger change records how long (in
//! logical-clock ticks) the previous dragger held the floor into a
//! histogram.
//!
//! The board is deliberately dumber than the advisor built on top of
//! it (`certify::advisor`): it only counts and scores. Folding the
//! edge matrix into an observed DHG and comparing decompositions
//! happens above the `obs` crate, which knows nothing about
//! hierarchies.

use mc::sync::{AtomicBool, AtomicU64, OnceLock, Ordering};

use crate::gauges::WALL_READER;
use crate::hist::{Histogram, HistogramSnapshot};

/// Default trip threshold: total-variation distance ≥ 0.25 between the
/// interval's share vector and the EWMA baseline.
pub const DEFAULT_DRIFT_THRESHOLD_MILLI: u64 = 250;

/// EWMA smoothing factor α in milli-units: `b' = b + α·(p − b)`.
const EWMA_ALPHA_MILLI: i64 = 300;

/// Minimum interval samples before a sketch family is scored; folds
/// over thinner intervals neither score nor move the baseline.
const MIN_FOLD_SAMPLES: u64 = 16;

/// Sentinel for "no class currently holds the wall floor".
const NO_DRAGGER: u64 = u64::MAX;

/// Dimensioned sketch cells, allocated once by
/// [`DriftBoard::configure`] (first caller wins).
#[derive(Debug)]
struct Dims {
    n_classes: u32,
    n_segments: u32,
    /// Cumulative cross-read counts, `(n_classes + 1) × n_segments`;
    /// the last row is the wall-reader row.
    access: Vec<AtomicU64>,
    /// `access` as of the previous fold (interval deltas).
    access_prev: Vec<AtomicU64>,
    /// EWMA baseline share per access cell, milli-units.
    access_base: Vec<AtomicU64>,
    /// Interval share per access cell at the latest fold, milli-units.
    access_share: Vec<AtomicU64>,
    /// Cumulative co-access edge counts, `n_segments × n_segments`
    /// (row = writer segment, column = accessed segment).
    edges: Vec<AtomicU64>,
    /// `edges` as of the previous fold.
    edges_prev: Vec<AtomicU64>,
    /// EWMA baseline share per edge, milli-units.
    edges_base: Vec<AtomicU64>,
    /// Interval share per edge at the latest fold, milli-units.
    edges_share: Vec<AtomicU64>,
    /// Transactions begun per class; index `n_classes` is the ad-hoc
    /// read-only row.
    begun: Vec<AtomicU64>,
    /// Transactions committed per class (same layout as `begun`).
    committed: Vec<AtomicU64>,
    /// Wall refreshes on which each class held the floor.
    drag_blame: Vec<AtomicU64>,
}

impl Dims {
    fn new(n_classes: u32, n_segments: u32) -> Dims {
        let cells = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        let n_access = (n_classes as usize + 1) * n_segments as usize;
        let n_edges = n_segments as usize * n_segments as usize;
        Dims {
            n_classes,
            n_segments,
            access: cells(n_access),
            access_prev: cells(n_access),
            access_base: cells(n_access),
            access_share: cells(n_access),
            edges: cells(n_edges),
            edges_prev: cells(n_edges),
            edges_base: cells(n_edges),
            edges_share: cells(n_edges),
            begun: cells(n_classes as usize + 1),
            committed: cells(n_classes as usize + 1),
            drag_blame: cells(n_classes as usize),
        }
    }

    /// Row index for a reader id (class, or the wall-reader row).
    fn reader_row(&self, reader: u32) -> Option<usize> {
        if reader == WALL_READER {
            Some(self.n_classes as usize)
        } else if reader < self.n_classes {
            Some(reader as usize)
        } else {
            None
        }
    }

    /// Arrival-row index for a class id (`WALL_READER` and anything
    /// out of range land on the ad-hoc read-only row).
    fn class_row(&self, class: u32) -> usize {
        if class < self.n_classes {
            class as usize
        } else {
            self.n_classes as usize
        }
    }
}

/// A threshold crossing returned by [`DriftBoard::fold`]: the score
/// rose from below the trip threshold to at or above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftTrip {
    /// Fold ordinal (1-based) at which the trip fired.
    pub fold: u64,
    /// Combined drift score at the trip, milli-units.
    pub score_milli: u64,
    /// Threshold in force at the trip, milli-units.
    pub threshold_milli: u64,
    /// Class currently blamed for the wall floor, if any.
    pub dragger: Option<u32>,
}

/// The streaming drift sketch (see module docs). One per [`crate::Obs`].
#[derive(Debug)]
pub struct DriftBoard {
    /// Sketch master switch, independent of `Obs::enabled` so the
    /// drift overhead can be measured against an obs-enabled baseline.
    enabled: AtomicBool,
    threshold_milli: AtomicU64,
    access_seeded: AtomicBool,
    edges_seeded: AtomicBool,
    score_milli: AtomicU64,
    access_score_milli: AtomicU64,
    edge_score_milli: AtomicU64,
    access_interval_total: AtomicU64,
    edge_interval_total: AtomicU64,
    tripped: AtomicBool,
    folds: AtomicU64,
    trips: AtomicU64,
    drag_class: AtomicU64,
    drag_since: AtomicU64,
    drag_now: AtomicU64,
    drag_hist: Histogram,
    dims: OnceLock<Dims>,
}

impl Default for DriftBoard {
    fn default() -> Self {
        Self::new()
    }
}

impl DriftBoard {
    /// A fresh, undimensioned, disabled board.
    #[must_use]
    pub fn new() -> DriftBoard {
        DriftBoard {
            enabled: AtomicBool::new(false),
            threshold_milli: AtomicU64::new(DEFAULT_DRIFT_THRESHOLD_MILLI),
            access_seeded: AtomicBool::new(false),
            edges_seeded: AtomicBool::new(false),
            score_milli: AtomicU64::new(0),
            access_score_milli: AtomicU64::new(0),
            edge_score_milli: AtomicU64::new(0),
            access_interval_total: AtomicU64::new(0),
            edge_interval_total: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
            folds: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            drag_class: AtomicU64::new(NO_DRAGGER),
            drag_since: AtomicU64::new(0),
            drag_now: AtomicU64::new(0),
            drag_hist: Histogram::new(),
            dims: OnceLock::new(),
        }
    }

    /// Allocate the dimensioned cells. First caller wins; later calls
    /// (other schedulers sharing the board) are no-ops.
    pub fn configure(&self, n_classes: u32, n_segments: u32) {
        self.dims.get_or_init(|| Dims::new(n_classes, n_segments));
    }

    /// Is the sketch recording?
    // ordering: Relaxed — advisory flag; a racing record on the old
    // value only adds/drops one count.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) // ordering: see fn-top note
    }

    /// Flip the sketch on or off (off by default; the dashboards and
    /// E20 turn it on explicitly).
    // ordering: Relaxed — same advisory flag as `enabled`.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed); // ordering: see fn-top note
    }

    /// Current trip threshold in milli-units.
    // ordering: Relaxed — configuration knob read by the folder only.
    #[must_use]
    pub fn threshold_milli(&self) -> u64 {
        self.threshold_milli.load(Ordering::Relaxed) // ordering: see fn-top note
    }

    /// Set the trip threshold (milli-units; clamped to `1..=1000`).
    // ordering: Relaxed — configuration knob; folds pick it up lazily.
    pub fn set_threshold_milli(&self, t: u64) {
        self.threshold_milli
            .store(t.clamp(1, 1000), Ordering::Relaxed); // ordering: see fn-top note
    }

    /// Record one admitted transaction of `class` (`u32::MAX` or any
    /// out-of-range id counts on the ad-hoc read-only row). Drops
    /// silently when unconfigured.
    // ordering: Relaxed — independent monotone counter; folds read a
    // consistent-enough snapshot because deltas saturate.
    #[inline]
    pub fn note_begin(&self, class: u32) {
        if let Some(d) = self.dims.get() {
            d.begun[d.class_row(class)].fetch_add(1, Ordering::Relaxed); // ordering: see fn-top note
        }
    }

    /// Record one committed transaction of `class` (same row rules as
    /// [`DriftBoard::note_begin`]).
    // ordering: Relaxed — independent monotone counter.
    #[inline]
    pub fn note_commit(&self, class: u32) {
        if let Some(d) = self.dims.get() {
            d.committed[d.class_row(class)].fetch_add(1, Ordering::Relaxed); // ordering: see fn-top note
        }
    }

    /// Record one cross-class read by `reader` (class id, or
    /// [`WALL_READER`]) from `segment`. Drops silently when
    /// unconfigured or out of range.
    // ordering: Relaxed — independent monotone counter on the read hot
    // path; no ordering with the data read itself is needed.
    #[inline]
    pub fn record_access(&self, reader: u32, segment: u32) {
        if let Some(d) = self.dims.get() {
            if segment >= d.n_segments {
                return;
            }
            if let Some(row) = d.reader_row(reader) {
                d.access[row * d.n_segments as usize + segment as usize]
                    .fetch_add(1, Ordering::Relaxed); // ordering: see fn-top note
            }
        }
    }

    /// Record one declared co-access `writer segment → accessed
    /// segment` edge from an admitted profile (the DHG arc-generation
    /// rule; `from == to` records the diagonal so write-only traffic
    /// still has mass). Drops silently when unconfigured/out of range.
    // ordering: Relaxed — independent monotone counter at begin().
    #[inline]
    pub fn record_edge(&self, from: u32, to: u32) {
        if let Some(d) = self.dims.get() {
            if from < d.n_segments && to < d.n_segments {
                d.edges[from as usize * d.n_segments as usize + to as usize]
                    .fetch_add(1, Ordering::Relaxed); // ordering: see fn-top note
            }
        }
    }

    /// Feed one wall refresh: `dragger` is the class whose component
    /// equals the released floor (`None` when no wall has been
    /// released yet), `now` the logical clock. Bumps the dragger's
    /// blame; on a dragger change, records how long the previous one
    /// held the floor.
    // ordering: Relaxed — called from the single maintenance folder;
    // the atomics only guard against a racing snapshot, which may see
    // a duration one refresh stale.
    pub fn note_wall_floor(&self, dragger: Option<u32>, now: u64) {
        let Some(d) = self.dims.get() else { return };
        let new = match dragger {
            Some(c) if c < d.n_classes => u64::from(c),
            _ => NO_DRAGGER,
        };
        self.drag_now.store(now, Ordering::Relaxed); // ordering: see fn-top note
                                                     // ordering: Relaxed — single-writer swap; see fn-top note.
        let prev = self.drag_class.swap(new, Ordering::Relaxed);
        if prev != new {
            if prev != NO_DRAGGER {
                let since = self.drag_since.load(Ordering::Relaxed); // ordering: see fn-top note
                self.drag_hist.record(now.saturating_sub(since));
            }
            self.drag_since.store(now, Ordering::Relaxed); // ordering: see fn-top note
        }
        if new != NO_DRAGGER {
            // ordering: Relaxed — independent monotone blame counter.
            d.drag_blame[new as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Score one sketch family: interval deltas → shares → TV distance
    /// vs the EWMA baseline, then absorb the interval. Returns the
    /// family score in milli-units (0 when under-sampled or unseeded).
    // ordering: Relaxed — the fold is called from the maintenance
    // thread only; hot-path bumps racing the delta computation shift
    // at most a handful of samples into the next interval.
    fn fold_family(
        cur: &[AtomicU64],
        prev: &[AtomicU64],
        base: &[AtomicU64],
        share_out: &[AtomicU64],
        seeded: &AtomicBool,
        interval_total: &AtomicU64,
    ) -> u64 {
        let mut delta = vec![0u64; cur.len()];
        let mut total = 0u64;
        for (i, c) in cur.iter().enumerate() {
            let now = c.load(Ordering::Relaxed); // ordering: see fn-top note
            let before = prev[i].load(Ordering::Relaxed); // ordering: see fn-top note
            delta[i] = now.saturating_sub(before);
            total += delta[i];
        }
        if total < MIN_FOLD_SAMPLES {
            // Thin interval: keep the baseline, report calm.
            interval_total.store(total, Ordering::Relaxed); // ordering: see fn-top note
            return 0;
        }
        for (i, c) in cur.iter().enumerate() {
            prev[i].store(c.load(Ordering::Relaxed), Ordering::Relaxed); // ordering: see fn-top note
        }
        interval_total.store(total, Ordering::Relaxed); // ordering: see fn-top note
        let first = !seeded.swap(true, Ordering::Relaxed); // ordering: see fn-top note
        let mut tv = 0i64;
        for (i, d) in delta.iter().enumerate() {
            let p = (d * 1000 / total) as i64;
            share_out[i].store(p as u64, Ordering::Relaxed); // ordering: see fn-top note
            let b = if first {
                p
            } else {
                base[i].load(Ordering::Relaxed) as i64 // ordering: see fn-top note
            };
            tv += (p - b).abs();
            let next = b + EWMA_ALPHA_MILLI * (p - b) / 1000;
            base[i].store(next.clamp(0, 1000) as u64, Ordering::Relaxed); // ordering: see fn-top note
        }
        (tv / 2) as u64
    }

    /// Fold the interval since the previous fold: score both sketch
    /// families, update the EWMA baselines, and detect an
    /// edge-triggered threshold crossing. Returns `Some` exactly when
    /// this fold newly trips the board. Call at maintenance cadence.
    // ordering: Relaxed — single folder (maintenance thread); see
    // `fold_family` for the race budget with hot-path bumps.
    pub fn fold(&self) -> Option<DriftTrip> {
        let d = self.dims.get()?;
        let fold_n = self.folds.fetch_add(1, Ordering::Relaxed) + 1; // ordering: see fn-top note
        let access_score = Self::fold_family(
            &d.access,
            &d.access_prev,
            &d.access_base,
            &d.access_share,
            &self.access_seeded,
            &self.access_interval_total,
        );
        let edge_score = Self::fold_family(
            &d.edges,
            &d.edges_prev,
            &d.edges_base,
            &d.edges_share,
            &self.edges_seeded,
            &self.edge_interval_total,
        );
        let score = access_score.max(edge_score);
        self.access_score_milli
            .store(access_score, Ordering::Relaxed); // ordering: see fn-top note
        self.edge_score_milli.store(edge_score, Ordering::Relaxed); // ordering: see fn-top note
        self.score_milli.store(score, Ordering::Relaxed); // ordering: see fn-top note
        let threshold = self.threshold_milli();
        let was = self.tripped.load(Ordering::Relaxed); // ordering: see fn-top note
        if score >= threshold {
            if !was {
                self.tripped.store(true, Ordering::Relaxed); // ordering: see fn-top note
                self.trips.fetch_add(1, Ordering::Relaxed); // ordering: see fn-top note
                let dragger = self.drag_class.load(Ordering::Relaxed); // ordering: see fn-top note
                return Some(DriftTrip {
                    fold: fold_n,
                    score_milli: score,
                    threshold_milli: threshold,
                    dragger: (dragger != NO_DRAGGER).then_some(dragger as u32),
                });
            }
        } else if was && score < threshold.saturating_mul(4) / 5 {
            // 20% hysteresis so a score hovering at the threshold
            // yields one trip, not a trip per fold.
            self.tripped.store(false, Ordering::Relaxed); // ordering: see fn-top note
        }
        None
    }

    /// Latest combined drift score in milli-units.
    // ordering: Relaxed — advisory read of the folder's last store.
    #[must_use]
    pub fn score_milli(&self) -> u64 {
        self.score_milli.load(Ordering::Relaxed) // ordering: see fn-top note
    }

    /// Is the board currently tripped (score at/above threshold)?
    // ordering: Relaxed — advisory read of the folder's last store.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed) // ordering: see fn-top note
    }

    /// Point-in-time copy of the whole sketch.
    // ordering: Relaxed — advisory snapshot; cells are independent
    // counters, so tearing across cells is acceptable by design.
    #[must_use]
    pub fn snapshot(&self) -> DriftSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed); // ordering: see fn-top note
        let mut snap = DriftSnapshot {
            configured: false,
            enabled: self.enabled(),
            n_classes: 0,
            n_segments: 0,
            threshold_milli: self.threshold_milli(),
            score_milli: ld(&self.score_milli),
            access_score_milli: ld(&self.access_score_milli),
            edge_score_milli: ld(&self.edge_score_milli),
            access_interval_total: ld(&self.access_interval_total),
            edge_interval_total: ld(&self.edge_interval_total),
            tripped: self.tripped(),
            folds: ld(&self.folds),
            trips: ld(&self.trips),
            classes: Vec::new(),
            cells: Vec::new(),
            edges: Vec::new(),
            drag_class: None,
            drag_held_ticks: 0,
            drag_hist: self.drag_hist.snapshot(),
        };
        let Some(d) = self.dims.get() else {
            return snap;
        };
        snap.configured = true;
        snap.n_classes = d.n_classes;
        snap.n_segments = d.n_segments;
        let dragger = ld(&self.drag_class);
        if dragger != NO_DRAGGER {
            snap.drag_class = Some(dragger as u32);
            snap.drag_held_ticks = ld(&self.drag_now).saturating_sub(ld(&self.drag_since));
        }
        for row in 0..=d.n_classes as usize {
            snap.classes.push(ClassDrift {
                class: if row == d.n_classes as usize {
                    WALL_READER
                } else {
                    row as u32
                },
                begun: ld(&d.begun[row]),
                committed: ld(&d.committed[row]),
                drag_blame: if row < d.n_classes as usize {
                    ld(&d.drag_blame[row])
                } else {
                    0
                },
            });
        }
        for row in 0..=d.n_classes as usize {
            for seg in 0..d.n_segments as usize {
                let i = row * d.n_segments as usize + seg;
                let count = ld(&d.access[i]);
                if count == 0 {
                    continue;
                }
                snap.cells.push(DriftCell {
                    reader: if row == d.n_classes as usize {
                        WALL_READER
                    } else {
                        row as u32
                    },
                    segment: seg as u32,
                    count,
                    share_milli: ld(&d.access_share[i]),
                    baseline_milli: ld(&d.access_base[i]),
                });
            }
        }
        for from in 0..d.n_segments as usize {
            for to in 0..d.n_segments as usize {
                let i = from * d.n_segments as usize + to;
                let count = ld(&d.edges[i]);
                if count == 0 {
                    continue;
                }
                snap.edges.push(DriftEdge {
                    from: from as u32,
                    to: to as u32,
                    count,
                    share_milli: ld(&d.edges_share[i]),
                    baseline_milli: ld(&d.edges_base[i]),
                });
            }
        }
        snap
    }

    /// Clear every count, score, baseline and the trip latch, keeping
    /// the configuration, threshold and enable flag (mirrors
    /// `GaugeBoard::reset`).
    // ordering: Relaxed — reset runs between measured phases, not
    // concurrently with a fold.
    pub fn reset(&self) {
        let zero = |v: &[AtomicU64]| {
            for a in v {
                a.store(0, Ordering::Relaxed); // ordering: see fn-top note
            }
        };
        if let Some(d) = self.dims.get() {
            zero(&d.access);
            zero(&d.access_prev);
            zero(&d.access_base);
            zero(&d.access_share);
            zero(&d.edges);
            zero(&d.edges_prev);
            zero(&d.edges_base);
            zero(&d.edges_share);
            zero(&d.begun);
            zero(&d.committed);
            zero(&d.drag_blame);
        }
        self.access_seeded.store(false, Ordering::Relaxed); // ordering: see fn-top note
        self.edges_seeded.store(false, Ordering::Relaxed); // ordering: see fn-top note
        self.score_milli.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.access_score_milli.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.edge_score_milli.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.access_interval_total.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.edge_interval_total.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.tripped.store(false, Ordering::Relaxed); // ordering: see fn-top note
        self.folds.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.trips.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.drag_class.store(NO_DRAGGER, Ordering::Relaxed); // ordering: see fn-top note
        self.drag_since.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.drag_now.store(0, Ordering::Relaxed); // ordering: see fn-top note
        self.drag_hist.reset();
    }
}

/// Per-class arrival/commit/blame row in a [`DriftSnapshot`]; the
/// trailing row (`class == WALL_READER`) aggregates ad-hoc read-only
/// transactions outside every class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassDrift {
    /// Class id, or [`WALL_READER`] for the ad-hoc read-only row.
    pub class: u32,
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Wall refreshes on which this class held the floor.
    pub drag_blame: u64,
}

/// One non-zero `(reader, segment)` cross-read cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftCell {
    /// Reader class id, or [`WALL_READER`] for Protocol C readers.
    pub reader: u32,
    /// Source segment.
    pub segment: u32,
    /// Cumulative reads.
    pub count: u64,
    /// Interval share at the latest fold, milli-units.
    pub share_milli: u64,
    /// EWMA baseline share, milli-units.
    pub baseline_milli: u64,
}

/// One non-zero observed co-access edge (the observed-DHG arc
/// `writer segment → accessed segment`; the diagonal carries write-only
/// mass and is not an arc).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftEdge {
    /// Writer segment.
    pub from: u32,
    /// Accessed (read or written) segment.
    pub to: u32,
    /// Cumulative occurrences.
    pub count: u64,
    /// Interval share at the latest fold, milli-units.
    pub share_milli: u64,
    /// EWMA baseline share, milli-units.
    pub baseline_milli: u64,
}

/// Point-in-time copy of a [`DriftBoard`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriftSnapshot {
    /// Has `configure` run (are the dimensioned sketches allocated)?
    pub configured: bool,
    /// Was the sketch recording at snapshot time?
    pub enabled: bool,
    /// Hierarchy classes.
    pub n_classes: u32,
    /// Database segments.
    pub n_segments: u32,
    /// Trip threshold, milli-units.
    pub threshold_milli: u64,
    /// Latest combined drift score (max of the family scores).
    pub score_milli: u64,
    /// Latest cross-read-family score.
    pub access_score_milli: u64,
    /// Latest co-access-edge-family score.
    pub edge_score_milli: u64,
    /// Cross-read samples in the latest scored interval.
    pub access_interval_total: u64,
    /// Edge samples in the latest scored interval.
    pub edge_interval_total: u64,
    /// Is the board currently tripped?
    pub tripped: bool,
    /// Folds performed.
    pub folds: u64,
    /// Lifetime trips (threshold crossings).
    pub trips: u64,
    /// Per-class arrival/commit/blame rows (trailing ad-hoc row).
    pub classes: Vec<ClassDrift>,
    /// Non-zero cross-read cells.
    pub cells: Vec<DriftCell>,
    /// Non-zero observed co-access edges.
    pub edges: Vec<DriftEdge>,
    /// Class currently blamed for the wall floor.
    pub drag_class: Option<u32>,
    /// Ticks the current dragger has held the floor so far.
    pub drag_held_ticks: u64,
    /// Completed floor-hold durations, in logical-clock ticks.
    pub drag_hist: HistogramSnapshot,
}

impl DriftSnapshot {
    /// Reader label for a row id: `c3`, or `wall` for the synthetic
    /// wall/ad-hoc row.
    #[must_use]
    pub fn reader_label(reader: u32) -> String {
        if reader == WALL_READER {
            "wall".to_string()
        } else {
            format!("c{reader}")
        }
    }

    /// Hand-rolled JSON rendering (no serde in the offline build).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"configured\": {}, \"enabled\": {}, \"n_classes\": {}, \"n_segments\": {}, \
             \"threshold_milli\": {}, \"score_milli\": {}, \"access_score_milli\": {}, \
             \"edge_score_milli\": {}, \"access_interval_total\": {}, \
             \"edge_interval_total\": {}, \"tripped\": {}, \"folds\": {}, \"trips\": {}",
            self.configured,
            self.enabled,
            self.n_classes,
            self.n_segments,
            self.threshold_milli,
            self.score_milli,
            self.access_score_milli,
            self.edge_score_milli,
            self.access_interval_total,
            self.edge_interval_total,
            self.tripped,
            self.folds,
            self.trips
        );
        s.push_str(", \"classes\": [");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"class\": \"{}\", \"begun\": {}, \"committed\": {}, \"drag_blame\": {}}}",
                Self::reader_label(c.class),
                c.begun,
                c.committed,
                c.drag_blame
            );
        }
        s.push_str("], \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"reader\": \"{}\", \"segment\": {}, \"count\": {}, \"share_milli\": {}, \
                 \"baseline_milli\": {}}}",
                Self::reader_label(c.reader),
                c.segment,
                c.count,
                c.share_milli,
                c.baseline_milli
            );
        }
        s.push_str("], \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"from\": {}, \"to\": {}, \"count\": {}, \"share_milli\": {}, \
                 \"baseline_milli\": {}}}",
                e.from, e.to, e.count, e.share_milli, e.baseline_milli
            );
        }
        let _ = write!(
            s,
            "], \"drag_class\": {}, \"drag_held_ticks\": {}, \"drag_hist\": {}}}",
            self.drag_class
                .map_or("null".to_string(), |c| c.to_string()),
            self.drag_held_ticks,
            self.drag_hist.to_json()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_board() -> DriftBoard {
        let b = DriftBoard::new();
        b.configure(2, 3);
        b.set_enabled(true);
        b
    }

    /// Bump cells to a given per-cell count vector (access family).
    fn feed_access(b: &DriftBoard, counts: &[(u32, u32, u64)]) {
        for &(reader, seg, n) in counts {
            for _ in 0..n {
                b.record_access(reader, seg);
            }
        }
    }

    #[test]
    fn unconfigured_board_drops_everything_silently() {
        let b = DriftBoard::new();
        b.record_access(0, 0);
        b.record_edge(0, 1);
        b.note_begin(0);
        b.note_commit(0);
        b.note_wall_floor(Some(0), 5);
        assert_eq!(b.fold(), None);
        let s = b.snapshot();
        assert!(!s.configured);
        assert!(s.cells.is_empty() && s.edges.is_empty() && s.classes.is_empty());
    }

    #[test]
    fn first_adequate_fold_seeds_baseline_and_scores_zero() {
        let b = seeded_board();
        feed_access(&b, &[(0, 0, 20), (1, 2, 20)]);
        assert_eq!(b.fold(), None);
        assert_eq!(b.score_milli(), 0);
        let s = b.snapshot();
        assert_eq!(s.folds, 1);
        // Baseline seeded at the observed shares (500‰ each).
        let cell = s.cells.iter().find(|c| c.reader == 0).unwrap();
        assert_eq!(cell.baseline_milli, 500);
        assert_eq!(cell.share_milli, 500);
    }

    #[test]
    fn shifted_mix_trips_once_and_rearms_after_hysteresis() {
        let b = seeded_board();
        feed_access(&b, &[(0, 0, 50), (1, 2, 50)]);
        b.fold();
        // Same mix again: calm.
        feed_access(&b, &[(0, 0, 50), (1, 2, 50)]);
        assert_eq!(b.fold(), None);
        assert!(b.score_milli() < 50, "steady mix must score low");
        // Shift everything onto one cell: TV = 500‰ > threshold.
        feed_access(&b, &[(0, 1, 100)]);
        let trip = b.fold().expect("shift must trip");
        assert!(trip.score_milli >= DEFAULT_DRIFT_THRESHOLD_MILLI);
        assert!(b.tripped());
        // Still shifted: tripped stays latched, no second trip event.
        feed_access(&b, &[(0, 1, 100)]);
        assert_eq!(b.fold(), None);
        assert_eq!(b.snapshot().trips, 1);
        // Hold the new mix until the EWMA converges and the latch
        // releases (score < 80% of threshold), then shift back: a new
        // trip fires.
        for _ in 0..12 {
            feed_access(&b, &[(0, 1, 100)]);
            b.fold();
        }
        assert!(!b.tripped(), "EWMA must converge and release the latch");
        feed_access(&b, &[(0, 0, 50), (1, 2, 50)]);
        assert!(b.fold().is_some(), "shift back must re-trip");
        assert_eq!(b.snapshot().trips, 2);
    }

    #[test]
    fn thin_intervals_neither_score_nor_move_the_baseline() {
        let b = seeded_board();
        feed_access(&b, &[(0, 0, 100)]);
        b.fold();
        // 5 samples on a *different* cell: under MIN_FOLD_SAMPLES, so
        // no trip and the baseline stays put.
        feed_access(&b, &[(1, 2, 5)]);
        assert_eq!(b.fold(), None);
        assert_eq!(b.score_milli(), 0);
        let s = b.snapshot();
        let cell = s.cells.iter().find(|c| c.reader == 0).unwrap();
        assert_eq!(cell.baseline_milli, 1000);
        // The thin samples are not lost: they score with the next
        // adequate interval.
        feed_access(&b, &[(1, 2, 95)]);
        assert!(b.fold().is_some(), "accumulated shift must trip");
    }

    #[test]
    fn edge_family_scores_independently_of_access_family() {
        let b = seeded_board();
        for _ in 0..30 {
            b.record_edge(0, 1);
        }
        b.fold();
        for _ in 0..30 {
            b.record_edge(2, 0);
        }
        let trip = b.fold().expect("edge-mix shift must trip");
        assert!(trip.score_milli >= DEFAULT_DRIFT_THRESHOLD_MILLI);
        let s = b.snapshot();
        assert_eq!(s.access_score_milli, 0);
        assert!(s.edge_score_milli >= DEFAULT_DRIFT_THRESHOLD_MILLI);
        assert_eq!(s.edges.len(), 2);
    }

    #[test]
    fn wall_drag_blames_the_floor_holder_and_histograms_handoffs() {
        let b = seeded_board();
        b.note_wall_floor(Some(0), 10);
        b.note_wall_floor(Some(0), 20);
        b.note_wall_floor(Some(1), 35);
        b.note_wall_floor(None, 40);
        let s = b.snapshot();
        let blame: Vec<u64> = s.classes.iter().map(|c| c.drag_blame).collect();
        assert_eq!(blame, vec![2, 1, 0]);
        // Two completed holds: class 0 for 25 ticks, class 1 for 5.
        assert_eq!(s.drag_hist.count, 2);
        assert_eq!(s.drag_hist.sum, 30);
        assert_eq!(s.drag_class, None);
    }

    #[test]
    fn begin_commit_rows_route_read_only_to_the_adhoc_row() {
        let b = seeded_board();
        b.note_begin(0);
        b.note_begin(1);
        b.note_begin(u32::MAX);
        b.note_commit(u32::MAX);
        let s = b.snapshot();
        assert_eq!(s.classes.len(), 3);
        assert_eq!(s.classes[2].class, WALL_READER);
        assert_eq!(s.classes[2].begun, 1);
        assert_eq!(s.classes[2].committed, 1);
    }

    #[test]
    fn reset_clears_counts_but_keeps_configuration_and_threshold() {
        let b = seeded_board();
        b.set_threshold_milli(400);
        feed_access(&b, &[(0, 0, 50)]);
        b.record_edge(0, 1);
        b.fold();
        b.reset();
        let s = b.snapshot();
        assert!(s.configured && s.enabled);
        assert_eq!(s.threshold_milli, 400);
        assert_eq!(s.folds, 0);
        assert!(s.cells.is_empty() && s.edges.is_empty());
        assert_eq!(s.score_milli, 0);
        // Post-reset the baseline reseeds rather than comparing
        // against the pre-reset mix.
        feed_access(&b, &[(1, 2, 50)]);
        assert_eq!(b.fold(), None);
        assert_eq!(b.score_milli(), 0);
    }

    #[test]
    fn snapshot_json_is_shaped_and_threshold_clamps() {
        let b = seeded_board();
        b.set_threshold_milli(5000);
        assert_eq!(b.threshold_milli(), 1000);
        b.set_threshold_milli(0);
        assert_eq!(b.threshold_milli(), 1);
        feed_access(&b, &[(0, 0, 20), (WALL_READER, 1, 4)]);
        b.note_wall_floor(Some(1), 9);
        let j = b.snapshot().to_json();
        for key in [
            "\"score_milli\"",
            "\"tripped\": false",
            "\"reader\": \"wall\"",
            "\"drag_class\": 1",
            "\"drag_hist\"",
            "\"classes\"",
            "\"edges\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
