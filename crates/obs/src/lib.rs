//! # obs — zero-dependency observability for the HDD workspace
//!
//! The paper's whole argument is a *cost* argument, yet flat counters
//! cannot say how the cost is *distributed* (latency histograms) or
//! *why* a protocol decided what it did (decision traces). This crate
//! supplies both, hand-rolled over `std` (the offline build forbids
//! crates.io, in the style of `compat-rand`/`compat-criterion`), in
//! three layers:
//!
//! 1. [`hist`] — log-bucketed HDR-style [`Histogram`] with ≤ ~6.25%
//!    quantile error, and [`recorder::LatencyRecorder`] striping whole
//!    histograms per worker thread;
//! 2. [`trace`] — a bounded ticket-ordered [`TraceRing`] of structured
//!    [`TraceEvent`]s (Protocol A cross-read decisions, rejection reason
//!    codes, time-wall evaluations, GC batches, driver backoff);
//! 3. [`Obs`] / [`ObsSnapshot`] — the per-scheduler sidecar bundling the
//!    recorders behind **one atomic enable flag** (default off: a single
//!    relaxed load per instrumentation site), plus hand-rolled JSON
//!    export in the style of `BENCH_hotpath.json`.
//!
//! `obs` sits *below* `txn-model` so `Metrics` can embed an [`Obs`]
//! without a dependency cycle; that is why trace events carry raw
//! integers instead of the workspace newtypes.

#![warn(missing_docs)]

pub mod blame;
pub mod drift;
pub mod export;
pub mod gauges;
pub mod hist;
pub mod recorder;
pub mod span;
pub mod trace;

pub use blame::{critical_chain, BlameReport, CauseBucket, ChainHop, PhaseBreakdown};
pub use drift::{
    ClassDrift, DriftBoard, DriftCell, DriftEdge, DriftSnapshot, DriftTrip,
    DEFAULT_DRIFT_THRESHOLD_MILLI,
};
pub use export::{
    chrome_trace, flight_chrome_trace, prometheus_text, prometheus_text_full,
    validate_chrome_trace, validate_prometheus,
};
pub use gauges::{ClassGauges, GaugeBoard, GaugeSnapshot, StalenessCell, WALL_READER};
pub use hist::{Histogram, HistogramSnapshot};
pub use recorder::LatencyRecorder;
pub use span::{
    assemble, FlightLog, FlightRecorder, SpanEvent, SpanKind, Terminal, TxnFlight, WaitCause,
    NO_CLASS,
};
pub use trace::{FaultCode, RejectReason, TraceEvent, TraceRing};

use mc::sync::{AtomicBool, Ordering};

/// The observability sidecar carried by every scheduler's `Metrics`.
///
/// All recording dimensions share the [`Obs::enabled`] flag; call sites
/// check it once (one relaxed load) and skip clock reads and recording
/// entirely when tracing is off, which is what keeps the disabled-mode
/// overhead under the 5% budget (`figure12_obs_overhead`).
#[derive(Debug, Default)]
pub struct Obs {
    enabled: AtomicBool,
    /// Transaction commit latency in nanoseconds: work-claim to commit,
    /// including restarts and backoff (recorded by the driver).
    pub commit_latency: LatencyRecorder,
    /// Per-operation service time in nanoseconds: one scheduler
    /// `read`/`write`/`commit` call (recorded by the driver).
    pub op_service: LatencyRecorder,
    /// Blocked-operation wait in nanoseconds: first `Block` outcome to
    /// eventual grant of the same step (recorded by the driver).
    pub block_wait: LatencyRecorder,
    /// Actual driver backoff sleep lengths in nanoseconds.
    pub backoff_sleep: LatencyRecorder,
    /// Activity-registry intervals examined per Protocol A bound
    /// evaluation (a length, not a latency; the O(active) claim, as a
    /// distribution).
    pub registry_scan: LatencyRecorder,
    /// Structured protocol decision events.
    pub trace: TraceRing,
    /// Live gauge board: time-wall/staleness/registry/store levels,
    /// refreshed by the scheduler's maintenance tick (see
    /// [`gauges::GaugeBoard`]).
    pub gauges: GaugeBoard,
    /// Transaction flight recorder: causal span trees with wait-cause
    /// edges, sampled every Nth transaction (see [`span`]). Inert until
    /// both [`Obs::enabled`] and a sampling stride are set.
    pub flight: FlightRecorder,
    /// Workload-drift sketch: access-frequency/co-access counters with
    /// EWMA baselines, drift scores and wall-drag blame (see [`drift`]).
    /// Inert until both [`Obs::enabled`] and its own enable flag are
    /// set, so drift overhead is measurable against an obs-on baseline.
    pub drift: DriftBoard,
}

impl Obs {
    /// A fresh, disabled sidecar.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        // ordering: Relaxed — advisory on/off flag; a racing emit may land
        // on either side of the flip, both outcomes are documented.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Switch recording on or off (callers that captured state before
    /// the flip may still record once; the rings and histograms stay
    /// valid either way).
    pub fn set_enabled(&self, on: bool) {
        // ordering: Relaxed — advisory flag flip, see enabled().
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Push a trace event if enabled.
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if self.enabled() {
            self.trace.push(ev);
        }
    }

    /// Copy every dimension.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            commit_latency: self.commit_latency.snapshot(),
            op_service: self.op_service.snapshot(),
            block_wait: self.block_wait.snapshot(),
            backoff_sleep: self.backoff_sleep.snapshot(),
            registry_scan: self.registry_scan.snapshot(),
            trace_recorded: self.trace.recorded(),
            trace_dropped: self.trace.dropped(),
        }
    }

    /// Clear every histogram, the trace ring, the gauge board, the
    /// flight recorder and the drift sketch (the enable flags, board
    /// configurations and the sampling stride are left as-is).
    pub fn reset(&self) {
        self.commit_latency.reset();
        self.op_service.reset();
        self.block_wait.reset();
        self.backoff_sleep.reset();
        self.registry_scan.reset();
        self.trace.reset();
        self.gauges.reset();
        self.flight.reset();
        self.drift.reset();
    }
}

/// A point-in-time copy of every [`Obs`] dimension.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// See [`Obs::commit_latency`].
    pub commit_latency: HistogramSnapshot,
    /// See [`Obs::op_service`].
    pub op_service: HistogramSnapshot,
    /// See [`Obs::block_wait`].
    pub block_wait: HistogramSnapshot,
    /// See [`Obs::backoff_sleep`].
    pub backoff_sleep: HistogramSnapshot,
    /// See [`Obs::registry_scan`].
    pub registry_scan: HistogramSnapshot,
    /// Trace events recorded over the run.
    pub trace_recorded: u64,
    /// Trace events evicted by ring wrap-around.
    pub trace_dropped: u64,
}

impl ObsSnapshot {
    /// Interval view against an `earlier` snapshot of the same sidecar:
    /// each histogram becomes its saturating
    /// [`HistogramSnapshot::delta`] and the trace counters subtract
    /// saturating, so a reset (or crash/recovery resume) between the
    /// snapshots clamps to zero instead of wrapping — the same contract
    /// as `MetricsSnapshot::delta`.
    pub fn delta(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        ObsSnapshot {
            commit_latency: self.commit_latency.delta(&earlier.commit_latency),
            op_service: self.op_service.delta(&earlier.op_service),
            block_wait: self.block_wait.delta(&earlier.block_wait),
            backoff_sleep: self.backoff_sleep.delta(&earlier.backoff_sleep),
            registry_scan: self.registry_scan.delta(&earlier.registry_scan),
            trace_recorded: self.trace_recorded.saturating_sub(earlier.trace_recorded),
            trace_dropped: self.trace_dropped.saturating_sub(earlier.trace_dropped),
        }
    }

    /// Hand-rolled JSON object over every dimension (no serde in the
    /// offline build).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n      \"commit_latency_ns\": {},\n      \"op_service_ns\": {},\n      \
             \"block_wait_ns\": {},\n      \"backoff_sleep_ns\": {},\n      \
             \"registry_scan_len\": {},\n      \"trace_recorded\": {},\n      \
             \"trace_dropped\": {}\n    }}",
            self.commit_latency.to_json(),
            self.op_service.to_json(),
            self.block_wait.to_json(),
            self.backoff_sleep.to_json(),
            self.registry_scan.to_json(),
            self.trace_recorded,
            self.trace_dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emit_respects_flag() {
        let o = Obs::new();
        assert!(!o.enabled());
        o.emit(TraceEvent::Backoff { nanos: 1 });
        assert_eq!(o.trace.recorded(), 0);
        o.set_enabled(true);
        o.emit(TraceEvent::Backoff { nanos: 1 });
        assert_eq!(o.trace.recorded(), 1);
        o.set_enabled(false);
        o.emit(TraceEvent::Backoff { nanos: 1 });
        assert_eq!(o.trace.recorded(), 1);
    }

    #[test]
    fn obs_delta_saturates_across_reset() {
        let o = Obs::new();
        o.set_enabled(true);
        o.commit_latency.record(100);
        o.emit(TraceEvent::Backoff { nanos: 1 });
        let before = o.snapshot();
        o.reset(); // recovery/resume mid-interval
        o.commit_latency.record(50);
        let d = o.snapshot().delta(&before);
        assert_eq!(d.commit_latency.count, 1);
        assert_eq!(d.trace_recorded, 0, "clamped, not wrapped");
        assert_eq!(d.trace_dropped, 0);
    }

    #[test]
    fn reset_clears_the_gauge_board_too() {
        let o = Obs::new();
        o.gauges.configure(1, 1);
        o.gauges.record_staleness(0, 0, 5);
        o.gauges.set_driver_progress(3, 4);
        o.reset();
        let g = o.gauges.snapshot();
        assert!(g.configured);
        assert!(g.staleness.is_empty());
        assert_eq!(g.driver_claimed, 0);
    }

    #[test]
    fn snapshot_round_trips_to_json() {
        let o = Obs::new();
        o.set_enabled(true);
        o.commit_latency.record(1500);
        o.block_wait.record(80);
        o.emit(TraceEvent::GcReclaim {
            watermark: 5,
            reclaimed: 3,
        });
        let s = o.snapshot();
        assert_eq!(s.commit_latency.count, 1);
        assert_eq!(s.trace_recorded, 1);
        let json = s.to_json();
        assert!(json.contains("\"commit_latency_ns\""));
        assert!(json.contains("\"trace_recorded\": 1"));
        o.reset();
        assert!(o.snapshot().commit_latency.is_empty());
        assert!(o.enabled(), "reset leaves the flag alone");
    }
}
