//! Structured protocol decision tracing.
//!
//! Schedulers emit [`TraceEvent`]s — *why* Protocol A chose a version,
//! why an operation was rejected, what a time-wall evaluation produced,
//! what GC reclaimed — into a [`TraceRing`]: bounded, thread-affine
//! stripes stamped with a global ticket, merged back into one
//! ticket-ordered stream on drain (the same shape as the striped
//! schedule log). Each stripe is a fixed-capacity ring: when full, the
//! oldest event of that stripe is overwritten and counted in
//! [`TraceRing::dropped`], so tracing a long run keeps the freshest
//! forensic window instead of growing without bound.
//!
//! Events carry raw integers (transaction ids, class indices, logical
//! timestamps) rather than `txn-model` newtypes: this crate sits below
//! `txn-model` so the `Metrics` struct can embed an [`Obs`](crate::Obs)
//! sidecar without a dependency cycle.

use mc::sync::{AtomicU64, Mutex, Ordering, ThreadStripe};
use std::collections::VecDeque;
use std::fmt;

/// Why a protocol rejected an operation (forcing an abort), or — for
/// [`RejectReason::WallViolation`] — why an unregistered read found a
/// state its bound proof forbids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A write arrived after a younger transaction already read or
    /// overwrote the granule (TO write rule).
    WriteTooLate,
    /// A read arrived after a younger transaction already overwrote the
    /// granule (basic-TO read rule).
    ReadTooLate,
    /// An unregistered (Protocol A / Protocol C) read found a pending
    /// version below its activity-link or time-wall bound — a state the
    /// bound proofs rule out. The read blocks rather than aborts, but
    /// any occurrence is counted loudly.
    WallViolation,
    /// Chosen as a deadlock victim (2PL family).
    DeadlockVictim,
    /// Aborted by the straggler watchdog: the transaction outlived its
    /// lease while holding an activity-registry entry, wedging
    /// `I_old`/`C_late` (and with them the time wall and GC watermark).
    WatchdogAbort,
}

impl RejectReason {
    /// Short stable label (tables, JSON).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::WriteTooLate => "write-too-late",
            RejectReason::ReadTooLate => "read-too-late",
            RejectReason::WallViolation => "wall-violation",
            RejectReason::DeadlockVictim => "deadlock-victim",
            RejectReason::WatchdogAbort => "watchdog-abort",
        }
    }
}

/// Which fault the chaos harness injected at a [`TraceEvent::CrashPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCode {
    /// Worker crashed mid-transaction (abandoned without abort).
    Crash,
    /// Worker stalled while holding an activity-registry entry.
    Stall,
    /// Worker delayed its commit.
    DelayCommit,
}

impl FaultCode {
    /// Short stable label (tables, JSON).
    pub fn label(self) -> &'static str {
        match self {
            FaultCode::Crash => "crash",
            FaultCode::Stall => "stall",
            FaultCode::DelayCommit => "delay-commit",
        }
    }
}

impl fmt::Display for FaultCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured protocol decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Protocol A served a cross-class read: transaction `txn` of class
    /// `reader_class` read `segment`/`key` in `target_class` with
    /// activity-link bound `bound` computed from `m` (the transaction's
    /// initiation time), and was served the version stamped `version`.
    CrossRead {
        /// Reading transaction id.
        txn: u64,
        /// The reader's class index.
        reader_class: u32,
        /// The class owning the segment read.
        target_class: u32,
        /// Segment index of the granule.
        segment: u32,
        /// Granule key.
        key: u64,
        /// Evaluation argument `m` (`I(t)`).
        m: u64,
        /// The `I_old` composition result: versions at or above it are
        /// invisible.
        bound: u64,
        /// Write timestamp of the version served.
        version: u64,
    },
    /// Protocol C served a read below a released time wall.
    WallRead {
        /// Reading transaction id.
        txn: u64,
        /// The class owning the segment read.
        target_class: u32,
        /// Segment index.
        segment: u32,
        /// Granule key.
        key: u64,
        /// The wall's anchor time `m`.
        anchor: u64,
        /// The wall component `E_s^i(m)` used as the read bound.
        bound: u64,
        /// Write timestamp of the version served.
        version: u64,
    },
    /// A protocol rule refused an operation.
    Reject {
        /// The refused transaction.
        txn: u64,
        /// Segment index of the granule involved.
        segment: u32,
        /// Granule key.
        key: u64,
        /// Reason code.
        reason: RejectReason,
    },
    /// An operation had to wait (`Block` outcome).
    Block {
        /// The waiting transaction.
        txn: u64,
        /// Segment index.
        segment: u32,
        /// Granule key.
        key: u64,
        /// True for writes, false for reads.
        write: bool,
    },
    /// The time-wall service released a wall.
    WallRelease {
        /// Anchor time `m` of the wall.
        anchor: u64,
        /// Release time `RT(TW)`.
        released_at: u64,
    },
    /// Garbage collection reclaimed a batch of versions.
    GcReclaim {
        /// The safe watermark used.
        watermark: u64,
        /// Versions reclaimed.
        reclaimed: u64,
    },
    /// The concurrent driver slept in exponential backoff.
    Backoff {
        /// Sleep length in nanoseconds.
        nanos: u64,
    },
    /// The straggler watchdog reaped a transaction past its lease.
    WatchdogAbort {
        /// The reaped transaction.
        txn: u64,
        /// Its initiation time `I(t)` (the registry entry retired).
        start: u64,
        /// How far past its deadline it was, in microseconds.
        overdue_micros: u64,
    },
    /// The chaos harness injected a fault into a worker.
    CrashPoint {
        /// The transaction the fault hit.
        txn: u64,
        /// Program step index at which the fault fired.
        op_index: u64,
        /// Which fault was injected.
        fault: FaultCode,
    },
    /// Crash recovery replayed a log into a fresh store + registry.
    RecoveryReplay {
        /// Events in the surviving log prefix.
        events: u64,
        /// Committed transactions redone.
        redone: u64,
        /// Uncommitted transactions rolled back by omission.
        rolled_back: u64,
        /// In-flight transactions closed with synthetic aborts so the
        /// rebuilt activity registry has no running intervals.
        in_flight_aborted: u64,
        /// Restored timestamp high-water mark (post-recovery ticks are
        /// strictly greater).
        high_water_mark: u64,
    },
    /// The drift sketch's fold crossed its trip threshold: the live
    /// workload mix has moved away from its EWMA baseline (see
    /// `obs::drift`); the advisor should re-derive the observed DHG.
    DriftTrip {
        /// Fold ordinal at which the trip fired.
        fold: u64,
        /// Combined drift score at the trip, milli-units (0..=1000).
        score_milli: u64,
        /// Trip threshold in force, milli-units.
        threshold_milli: u64,
        /// Class blamed for the wall floor at the trip, or `u32::MAX`
        /// when no wall had been released yet.
        dragger_class: u32,
    },
}

impl TraceEvent {
    /// Short stable kind label (JSON, tables).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::CrossRead { .. } => "cross-read",
            TraceEvent::WallRead { .. } => "wall-read",
            TraceEvent::Reject { .. } => "reject",
            TraceEvent::Block { .. } => "block",
            TraceEvent::WallRelease { .. } => "wall-release",
            TraceEvent::GcReclaim { .. } => "gc-reclaim",
            TraceEvent::Backoff { .. } => "backoff",
            TraceEvent::WatchdogAbort { .. } => "watchdog-abort",
            TraceEvent::CrashPoint { .. } => "crash-point",
            TraceEvent::RecoveryReplay { .. } => "recovery-replay",
            TraceEvent::DriftTrip { .. } => "drift-trip",
        }
    }

    /// The transaction the event belongs to, if any.
    pub fn txn(&self) -> Option<u64> {
        match self {
            TraceEvent::CrossRead { txn, .. }
            | TraceEvent::WallRead { txn, .. }
            | TraceEvent::Reject { txn, .. }
            | TraceEvent::Block { txn, .. }
            | TraceEvent::WatchdogAbort { txn, .. }
            | TraceEvent::CrashPoint { txn, .. } => Some(*txn),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::CrossRead {
                txn,
                reader_class,
                target_class,
                segment,
                key,
                m,
                bound,
                version,
            } => write!(
                f,
                "t{txn} (class {reader_class}) cross-read D{segment}[{key}] of class \
                 {target_class}: A(m={m}) = {bound}, served version ts:{version}"
            ),
            TraceEvent::WallRead {
                txn,
                target_class,
                segment,
                key,
                anchor,
                bound,
                version,
            } => write!(
                f,
                "t{txn} wall-read D{segment}[{key}] of class {target_class}: \
                 E(m={anchor}) = {bound}, served version ts:{version}"
            ),
            TraceEvent::Reject {
                txn,
                segment,
                key,
                reason,
            } => write!(f, "t{txn} rejected at D{segment}[{key}]: {reason}"),
            TraceEvent::Block {
                txn,
                segment,
                key,
                write,
            } => write!(
                f,
                "t{txn} blocked on {} D{segment}[{key}]",
                if *write { "write" } else { "read" }
            ),
            TraceEvent::WallRelease {
                anchor,
                released_at,
            } => write!(f, "wall released: anchor ts:{anchor} at ts:{released_at}"),
            TraceEvent::GcReclaim {
                watermark,
                reclaimed,
            } => write!(f, "gc reclaimed {reclaimed} versions below ts:{watermark}"),
            TraceEvent::Backoff { nanos } => write!(f, "driver backoff sleep {nanos} ns"),
            TraceEvent::WatchdogAbort {
                txn,
                start,
                overdue_micros,
            } => write!(
                f,
                "watchdog reaped t{txn} (I={start}), {overdue_micros} µs past its lease"
            ),
            TraceEvent::CrashPoint {
                txn,
                op_index,
                fault,
            } => write!(f, "chaos injected {fault} into t{txn} at op {op_index}"),
            TraceEvent::RecoveryReplay {
                events,
                redone,
                rolled_back,
                in_flight_aborted,
                high_water_mark,
            } => write!(
                f,
                "recovery replayed {events} events: {redone} redone, {rolled_back} rolled \
                 back, {in_flight_aborted} in-flight aborted, clock resumed past \
                 ts:{high_water_mark}"
            ),
            TraceEvent::DriftTrip {
                fold,
                score_milli,
                threshold_milli,
                dragger_class,
            } => {
                write!(
                    f,
                    "drift tripped at fold {fold}: score {score_milli}\u{2030} >= \
                     {threshold_milli}\u{2030}, wall dragged by "
                )?;
                if *dragger_class == u32::MAX {
                    write!(f, "no class")
                } else {
                    write!(f, "class {dragger_class}")
                }
            }
        }
    }
}

/// Power-of-two stripe count.
const STRIPES: usize = 8;

/// Default events retained per stripe (freshest window; ~3 MB total at
/// the 48-byte event size).
pub const DEFAULT_STRIPE_CAPACITY: usize = 8192;

/// Allocator of stable per-thread stripe indices (deterministic model
/// thread ids under `--cfg mc`).
static STRIPE_OF_THREAD: ThreadStripe = ThreadStripe::new();

/// Bounded, ticket-stamped, thread-affine event ring (see module docs).
#[derive(Debug)]
pub struct TraceRing {
    stripes: Vec<Mutex<VecDeque<(u64, TraceEvent)>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_STRIPE_CAPACITY)
    }
}

impl TraceRing {
    /// A ring retaining at most `per_stripe` events per stripe.
    pub fn with_capacity(per_stripe: usize) -> Self {
        TraceRing {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: per_stripe.max(1),
        }
    }

    /// Append an event: draw a global ticket, push into the calling
    /// thread's stripe (uncontended in the steady state — each worker
    /// owns its stripe), evicting that stripe's oldest event when full.
    pub fn push(&self, ev: TraceEvent) {
        // ordering: Relaxed — ticket uniqueness from fetch_add atomicity;
        // the event payload is published by the stripe mutex below.
        let ticket = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripes[STRIPE_OF_THREAD.index_for_thread(STRIPES - 1)].lock();
        if stripe.len() >= self.capacity {
            stripe.pop_front();
            // ordering: Relaxed — statistical eviction counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        stripe.push_back((ticket, ev));
    }

    /// Events recorded over the ring's lifetime (including evicted ones).
    pub fn recorded(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.seq.load(Ordering::Relaxed)
    }

    /// Events evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — advisory total, exact only at quiescence.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Take every retained event out of the ring, merged into one
    /// ticket-ordered stream (ascending; gaps mark evictions). Intended
    /// for quiescent moments — a drain concurrent with appends may miss
    /// in-flight tickets.
    pub fn drain(&self) -> Vec<(u64, TraceEvent)> {
        let mut all: Vec<(u64, TraceEvent)> = Vec::new();
        for s in &self.stripes {
            all.extend(s.lock().drain(..));
        }
        all.sort_unstable_by_key(|&(t, _)| t);
        all
    }

    /// Drop every retained event and zero the lifetime counters.
    pub fn reset(&self) {
        for s in &self.stripes {
            s.lock().clear();
        }
        // ordering: Relaxed — counter reset between phases; racing pushes
        // land on either side, both acceptable.
        self.seq.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed); // ordering: phase reset, see note above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_is_ticket_ordered() {
        let ring = TraceRing::with_capacity(64);
        for i in 0..50 {
            ring.push(TraceEvent::Backoff { nanos: i });
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 50);
        for w in drained.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(ring.recorded(), 50);
        assert_eq!(ring.dropped(), 0);
        assert!(ring.drain().is_empty(), "drain removes events");
    }

    #[test]
    fn ring_keeps_the_freshest_window() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..100u64 {
            ring.push(TraceEvent::Backoff { nanos: i });
        }
        let drained = ring.drain();
        // Single-threaded: one stripe in use, so exactly `capacity`
        // events survive and they are the newest ones.
        assert_eq!(drained.len(), 4);
        assert_eq!(ring.dropped(), 96);
        for (ticket, ev) in drained {
            assert!(ticket >= 96);
            assert!(matches!(ev, TraceEvent::Backoff { nanos } if nanos >= 96));
        }
    }

    #[test]
    fn concurrent_pushes_get_unique_tickets() {
        let ring = TraceRing::with_capacity(100_000);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..1000 {
                        ring.push(TraceEvent::Backoff {
                            nanos: t * 10_000 + i,
                        });
                    }
                });
            }
        });
        let drained = ring.drain();
        assert_eq!(drained.len(), 8000);
        for (i, w) in drained.windows(2).enumerate() {
            assert!(w[0].0 < w[1].0, "ticket order broken at {i}");
        }
        // Tickets are dense when nothing was evicted.
        assert_eq!(drained.last().unwrap().0, 7999);
    }

    #[test]
    fn wraparound_drain_is_monotone_and_untorn_under_8_threads() {
        // Overfill every stripe (8 threads × 3000 events into 256-slot
        // stripes), then drain: tickets must be strictly ascending with
        // no duplicates (no torn/double-counted events), every payload
        // must be internally consistent (thread tag and sequence agree
        // — a torn read would mix them), and the eviction arithmetic
        // must balance exactly.
        const PER_THREAD: u64 = 3000;
        const THREADS: u64 = 8;
        let ring = TraceRing::with_capacity(256);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Payload encodes (thread, seq) redundantly in
                        // two fields so a torn event is detectable.
                        ring.push(TraceEvent::WatchdogAbort {
                            txn: t * PER_THREAD + i,
                            start: t,
                            overdue_micros: i,
                        });
                    }
                });
            }
        });
        let recorded = ring.recorded();
        let dropped = ring.dropped();
        assert_eq!(recorded, THREADS * PER_THREAD);
        assert!(dropped > 0, "test must actually wrap");
        let drained = ring.drain();
        assert_eq!(
            drained.len() as u64 + dropped,
            recorded,
            "every event is either retained or counted dropped"
        );
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<u64> = None;
        for (ticket, ev) in &drained {
            assert!(*ticket < recorded, "ticket out of range");
            assert!(seen.insert(*ticket), "duplicate ticket {ticket}");
            if let Some(p) = prev {
                assert!(p < *ticket, "not strictly ascending at {ticket}");
            }
            prev = Some(*ticket);
            match ev {
                TraceEvent::WatchdogAbort {
                    txn,
                    start,
                    overdue_micros,
                } => {
                    assert_eq!(
                        *txn,
                        start * PER_THREAD + overdue_micros,
                        "torn event payload"
                    );
                    assert!(*start < THREADS && *overdue_micros < PER_THREAD);
                }
                other => panic!("foreign event {other:?}"),
            }
        }
        // The ring retains at most STRIPES × capacity events, and keeps
        // a *fresh* window: the newest retained ticket must come from
        // the final stretch of the run (stripe eviction is pop-front).
        assert!(drained.len() <= 8 * 256);
        let newest = drained.last().expect("ring not empty").0;
        assert!(
            newest + (8 * 256) >= recorded,
            "newest retained ticket {newest} is stale (recorded {recorded})"
        );
    }

    #[test]
    fn display_renders_every_kind() {
        let evs = [
            TraceEvent::CrossRead {
                txn: 1,
                reader_class: 2,
                target_class: 0,
                segment: 0,
                key: 7,
                m: 10,
                bound: 8,
                version: 5,
            },
            TraceEvent::WallRead {
                txn: 2,
                target_class: 1,
                segment: 1,
                key: 3,
                anchor: 20,
                bound: 18,
                version: 9,
            },
            TraceEvent::Reject {
                txn: 3,
                segment: 0,
                key: 1,
                reason: RejectReason::WriteTooLate,
            },
            TraceEvent::Block {
                txn: 4,
                segment: 2,
                key: 2,
                write: true,
            },
            TraceEvent::WallRelease {
                anchor: 30,
                released_at: 31,
            },
            TraceEvent::GcReclaim {
                watermark: 25,
                reclaimed: 12,
            },
            TraceEvent::Backoff { nanos: 1024 },
            TraceEvent::WatchdogAbort {
                txn: 5,
                start: 40,
                overdue_micros: 1500,
            },
            TraceEvent::CrashPoint {
                txn: 6,
                op_index: 3,
                fault: FaultCode::Stall,
            },
            TraceEvent::RecoveryReplay {
                events: 100,
                redone: 10,
                rolled_back: 2,
                in_flight_aborted: 1,
                high_water_mark: 99,
            },
            TraceEvent::DriftTrip {
                fold: 7,
                score_milli: 410,
                threshold_milli: 250,
                dragger_class: 1,
            },
            TraceEvent::DriftTrip {
                fold: 8,
                score_milli: 300,
                threshold_milli: 250,
                dragger_class: u32::MAX,
            },
        ];
        for ev in evs {
            let s = format!("{ev}");
            assert!(!s.is_empty());
            assert!(!ev.kind().is_empty());
        }
    }
}
